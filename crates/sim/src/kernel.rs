//! The discrete-event simulation kernel.
//!
//! A [`Sim<S>`] owns a time-ordered queue of events over an arbitrary user
//! state `S`. Each event is a one-shot closure receiving `&mut S` and
//! `&mut Sim<S>` so that handlers can mutate the world and schedule further
//! events. Ties on the timestamp are broken by insertion order, which makes
//! every run fully deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A one-shot event handler.
pub type EventFn<S> = Box<dyn FnOnce(&mut S, &mut Sim<S>)>;

struct Scheduled<S> {
    time: SimTime,
    seq: u64,
    f: EventFn<S>,
}

impl<S> PartialEq for Scheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<S> Eq for Scheduled<S> {}

impl<S> PartialOrd for Scheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<S> Ord for Scheduled<S> {
    /// Reversed so that `BinaryHeap` (a max-heap) pops the *earliest* event;
    /// equal timestamps pop in insertion (`seq`) order.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event simulator over user state `S`.
pub struct Sim<S> {
    now: SimTime,
    queue: BinaryHeap<Scheduled<S>>,
    next_seq: u64,
    executed: u64,
}

impl<S> Default for Sim<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> Sim<S> {
    /// A simulator at time zero with an empty event queue.
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            executed: 0,
        }
    }

    /// The current simulated instant.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `f` to run at absolute time `t`.
    ///
    /// # Panics
    /// Panics if `t` is earlier than the current time — scheduling into the
    /// past would silently corrupt causality.
    pub fn schedule_at(&mut self, t: SimTime, f: impl FnOnce(&mut S, &mut Sim<S>) + 'static) {
        assert!(
            t >= self.now,
            "cannot schedule event at {t} before current time {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled {
            time: t,
            seq,
            f: Box::new(f),
        });
    }

    /// Schedule `f` to run `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut S, &mut Sim<S>) + 'static,
    ) {
        let t = self
            .now
            .checked_add(delay)
            .expect("event time overflow: delay too large");
        self.schedule_at(t, f);
    }

    /// Run the single earliest pending event, advancing the clock to its
    /// timestamp. Returns `false` if the queue was empty.
    pub fn step(&mut self, state: &mut S) -> bool {
        match self.queue.pop() {
            Some(ev) => {
                debug_assert!(ev.time >= self.now);
                self.now = ev.time;
                self.executed += 1;
                (ev.f)(state, self);
                true
            }
            None => false,
        }
    }

    /// Run events until the queue is empty.
    pub fn run(&mut self, state: &mut S) {
        while self.step(state) {}
    }

    /// Run all events with timestamps `<= horizon`, then advance the clock to
    /// exactly `horizon` (even if no event fired there). Events scheduled at
    /// or before the horizon *by handlers running inside this call* are also
    /// executed.
    pub fn run_until(&mut self, state: &mut S, horizon: SimTime) {
        assert!(
            horizon >= self.now,
            "run_until horizon {horizon} is before current time {}",
            self.now
        );
        while let Some(ev) = self.queue.peek() {
            if ev.time > horizon {
                break;
            }
            self.step(state);
        }
        self.now = horizon;
    }

    /// Run for `d` of simulated time from the current instant.
    pub fn run_for(&mut self, state: &mut S, d: SimDuration) {
        let horizon = self
            .now
            .checked_add(d)
            .expect("run_for horizon overflow");
        self.run_until(state, horizon);
    }

    /// Run until `pred(state)` holds, checking after every event, or until
    /// the queue drains. Returns `true` if the predicate was satisfied.
    pub fn run_until_cond(&mut self, state: &mut S, mut pred: impl FnMut(&S) -> bool) -> bool {
        if pred(state) {
            return true;
        }
        while self.step(state) {
            if pred(state) {
                return true;
            }
        }
        false
    }

    /// Drop all pending events (used when tearing a scenario down early).
    pub fn clear_pending(&mut self) {
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut log = Vec::new();
        sim.schedule_at(SimTime::from_millis(30), |s: &mut Vec<u32>, _| s.push(3));
        sim.schedule_at(SimTime::from_millis(10), |s: &mut Vec<u32>, _| s.push(1));
        sim.schedule_at(SimTime::from_millis(20), |s: &mut Vec<u32>, _| s.push(2));
        sim.run(&mut log);
        assert_eq!(log, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_millis(30));
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut log = Vec::new();
        let t = SimTime::from_secs(1);
        for i in 0..16 {
            sim.schedule_at(t, move |s: &mut Vec<u32>, _| s.push(i));
        }
        sim.run(&mut log);
        assert_eq!(log, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        let mut log = Vec::new();
        fn chain(s: &mut Vec<u64>, sim: &mut Sim<Vec<u64>>) {
            s.push(sim.now().as_nanos());
            if s.len() < 5 {
                sim.schedule_in(SimDuration::from_nanos(100), chain);
            }
        }
        sim.schedule_at(SimTime::ZERO, chain);
        sim.run(&mut log);
        assert_eq!(log, vec![0, 100, 200, 300, 400]);
    }

    #[test]
    fn run_until_stops_at_horizon_and_advances_clock() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut log = Vec::new();
        sim.schedule_at(SimTime::from_secs(1), |s: &mut Vec<u32>, _| s.push(1));
        sim.schedule_at(SimTime::from_secs(3), |s: &mut Vec<u32>, _| s.push(3));
        sim.run_until(&mut log, SimTime::from_secs(2));
        assert_eq!(log, vec![1]);
        assert_eq!(sim.now(), SimTime::from_secs(2));
        assert_eq!(sim.pending(), 1);
        // The remaining event still fires later.
        sim.run(&mut log);
        assert_eq!(log, vec![1, 3]);
    }

    #[test]
    fn run_until_includes_events_scheduled_inside_the_window() {
        let mut sim: Sim<Vec<&'static str>> = Sim::new();
        let mut log = Vec::new();
        sim.schedule_at(SimTime::from_millis(10), |s: &mut Vec<&str>, sim| {
            s.push("a");
            sim.schedule_in(SimDuration::from_millis(5), |s: &mut Vec<&str>, _| {
                s.push("b")
            });
        });
        sim.run_until(&mut log, SimTime::from_millis(20));
        assert_eq!(log, vec!["a", "b"]);
    }

    #[test]
    fn run_until_cond_stops_early() {
        let mut sim: Sim<u32> = Sim::new();
        let mut n = 0u32;
        for i in 0..10 {
            sim.schedule_at(SimTime::from_secs(i), |s: &mut u32, _| *s += 1);
        }
        let hit = sim.run_until_cond(&mut n, |s| *s == 4);
        assert!(hit);
        assert_eq!(n, 4);
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    #[test]
    fn run_until_cond_reports_failure_when_queue_drains() {
        let mut sim: Sim<u32> = Sim::new();
        let mut n = 0u32;
        sim.schedule_at(SimTime::from_secs(1), |s: &mut u32, _| *s += 1);
        assert!(!sim.run_until_cond(&mut n, |s| *s == 100));
        assert_eq!(n, 1);
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_the_past_panics() {
        let mut sim: Sim<()> = Sim::new();
        sim.schedule_at(SimTime::from_secs(5), |_, _| {});
        sim.run(&mut ());
        sim.schedule_at(SimTime::from_secs(1), |_, _| {});
    }

    #[test]
    fn clear_pending_discards_events() {
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule_at(SimTime::from_secs(1), |s: &mut u32, _| *s += 1);
        sim.clear_pending();
        let mut n = 0;
        sim.run(&mut n);
        assert_eq!(n, 0);
    }
}
