//! Analytic service models: FIFO single-server stations and token buckets.
//!
//! These model contention without simulating every queued request as an
//! event: a station tracks the instant it next becomes free, so the
//! completion time of a request is `max(now, next_free) + service_time`.
//! This is exact for FIFO single-server queues and is how the storage array
//! and replication links charge service time.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// A FIFO single-server service station.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServiceStation {
    next_free: SimTime,
    busy: SimDuration,
    served: u64,
}

impl ServiceStation {
    /// A station that is free immediately.
    pub fn new() -> Self {
        ServiceStation::default()
    }

    /// Admit a request arriving at `now` with the given service time and
    /// return its completion instant. Also accumulates utilization stats.
    pub fn admit(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        let start = self.next_free.max(now);
        let done = start + service;
        self.next_free = done;
        self.busy += service;
        self.served += 1;
        done
    }

    /// The queueing delay a request arriving at `now` would experience
    /// before service starts.
    pub fn queue_delay(&self, now: SimTime) -> SimDuration {
        self.next_free.saturating_since(now)
    }

    /// The instant the station next becomes idle.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Total busy time accumulated.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Utilization over `[0, now]`, in `[0, 1]` (clamped).
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        (self.busy.as_nanos() as f64 / now.as_nanos() as f64).min(1.0)
    }

    /// Reset to the idle state (for reusing a station across trials).
    pub fn reset(&mut self) {
        *self = ServiceStation::default();
    }
}

/// A byte-rate limiter: requests of `bytes` size serialize through a pipe of
/// fixed bandwidth. Completion = when the last byte has been transmitted.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RatePipe {
    bytes_per_sec: u64,
    station: ServiceStation,
    bytes_moved: u64,
}

impl RatePipe {
    /// A pipe with the given bandwidth in bytes/second (0 = unusable pipe:
    /// transfers never complete, callers should treat `SimTime::MAX` as
    /// "stalled").
    pub fn new(bytes_per_sec: u64) -> Self {
        RatePipe {
            bytes_per_sec,
            station: ServiceStation::new(),
            bytes_moved: 0,
        }
    }

    /// Current configured bandwidth.
    pub fn bytes_per_sec(&self) -> u64 {
        self.bytes_per_sec
    }

    /// Change bandwidth (affects transfers admitted after this call).
    pub fn set_bytes_per_sec(&mut self, bps: u64) {
        self.bytes_per_sec = bps;
    }

    /// Admit a transfer of `bytes` arriving at `now`; returns the instant
    /// the transfer completes, or `SimTime::MAX` if bandwidth is zero.
    pub fn admit(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let service = SimDuration::for_bytes_at_rate(bytes, self.bytes_per_sec);
        if service == SimDuration::MAX {
            return SimTime::MAX;
        }
        self.bytes_moved += bytes;
        self.station.admit(now, service)
    }

    /// Total bytes accepted so far.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// The backlog delay a transfer arriving at `now` would wait before its
    /// first byte is sent.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.station.queue_delay(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_station_serves_immediately() {
        let mut s = ServiceStation::new();
        let done = s.admit(SimTime::from_millis(5), SimDuration::from_millis(2));
        assert_eq!(done, SimTime::from_millis(7));
        assert_eq!(s.served(), 1);
    }

    #[test]
    fn busy_station_queues_fifo() {
        let mut s = ServiceStation::new();
        let t0 = SimTime::ZERO;
        let d1 = s.admit(t0, SimDuration::from_millis(10));
        // Arrives while busy: waits for the first to finish.
        let d2 = s.admit(SimTime::from_millis(1), SimDuration::from_millis(10));
        assert_eq!(d1, SimTime::from_millis(10));
        assert_eq!(d2, SimTime::from_millis(20));
        assert_eq!(
            s.queue_delay(SimTime::from_millis(2)),
            SimDuration::from_millis(18)
        );
    }

    #[test]
    fn idle_gaps_are_not_charged() {
        let mut s = ServiceStation::new();
        s.admit(SimTime::ZERO, SimDuration::from_millis(1));
        // Long idle gap; next request starts fresh at its arrival.
        let done = s.admit(SimTime::from_secs(10), SimDuration::from_millis(1));
        assert_eq!(done, SimTime::from_secs(10) + SimDuration::from_millis(1));
        assert_eq!(s.busy_time(), SimDuration::from_millis(2));
        let u = s.utilization(SimTime::from_secs(10));
        assert!(u < 0.001);
    }

    #[test]
    fn rate_pipe_serializes_transfers() {
        // 1000 bytes/sec; two 500-byte transfers back to back.
        let mut p = RatePipe::new(1000);
        let a = p.admit(SimTime::ZERO, 500);
        let b = p.admit(SimTime::ZERO, 500);
        assert_eq!(a, SimTime::from_millis(500));
        assert_eq!(b, SimTime::from_secs(1));
        assert_eq!(p.bytes_moved(), 1000);
        assert_eq!(p.backlog(SimTime::ZERO), SimDuration::from_secs(1));
    }

    #[test]
    fn zero_bandwidth_stalls() {
        let mut p = RatePipe::new(0);
        assert_eq!(p.admit(SimTime::ZERO, 1), SimTime::MAX);
        assert_eq!(p.bytes_moved(), 0);
    }

    #[test]
    fn bandwidth_change_applies_to_new_admissions() {
        let mut p = RatePipe::new(1000);
        let a = p.admit(SimTime::ZERO, 1000);
        assert_eq!(a, SimTime::from_secs(1));
        p.set_bytes_per_sec(2000);
        let b = p.admit(SimTime::ZERO, 1000);
        assert_eq!(b, SimTime::from_millis(1500));
    }
}
