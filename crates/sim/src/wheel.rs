//! A hierarchical timer wheel: the kernel's pending-event store.
//!
//! Eleven levels of 64 slots each cover the full `u64` nanosecond range
//! (64^11 = 2^66). Level 0 resolves single nanoseconds; each level above
//! is 64× coarser. Insert and pop are O(1) amortized: an event is hashed
//! to a slot by the bits of its deadline that differ from the wheel's
//! `elapsed` cursor, and at most ten cascades (one per level) can touch it
//! over its whole lifetime.
//!
//! Determinism contract: [`TimerWheel::pop`] yields entries in exactly
//! ascending `(when, seq)` order — the same order a binary heap with a
//! `(time, seq)` key would produce — which is what keeps simulation runs
//! bit-identical to the old `BinaryHeap` kernel. The proof sketch lives
//! alongside each method; DESIGN.md §10 has the full argument.
//!
//! Invariant at every public API boundary: every pending entry sits at
//! `level_and_slot(entry.when)` computed against the *current* `elapsed`
//! cursor. `elapsed` only advances inside [`TimerWheel::pop`], and a pop
//! at level L re-homes exactly the entries of the drained slot (levels
//! above L keep both their digit of `elapsed` and their slot index; levels
//! below L were empty). That is what makes [`TimerWheel::cancel`] a pure
//! recomputation and [`TimerWheel::next_time`] side-effect free.

/// log2 of the slot count per level.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Levels; 64^11 ≥ 2^64 so any `u64` deadline fits.
const LEVELS: usize = 11;
/// Eagerly reserved capacity per slot, so pushing into a never-touched
/// slot does not allocate. Steady-state workloads with fewer than this
/// many co-resident entries per slot run allocation-free.
const SLOT_PREALLOC: usize = 4;

/// One pending event.
struct Entry<T> {
    when: u64,
    seq: u64,
    value: T,
}

/// A popped event: `(deadline, seq, value)`.
pub(crate) type Popped<T> = (u64, u64, T);

/// The wheel. `T` is the event payload type.
pub(crate) struct TimerWheel<T> {
    /// Cursor: the deadline of the most recently popped entry (or the
    /// block start it cascaded to). Never exceeds any pending deadline.
    elapsed: u64,
    /// Total pending entries.
    len: usize,
    /// Per-level occupancy bitmaps: bit `s` set ⇔ `slot(level, s)` is
    /// non-empty. Finding the next event is two `trailing_zeros` scans.
    occupied: [u64; LEVELS],
    /// `LEVELS * SLOTS` buckets, flattened; index `level * SLOTS + slot`.
    slots: Vec<Vec<Entry<T>>>,
}

impl<T> TimerWheel<T> {
    pub(crate) fn new() -> Self {
        TimerWheel {
            elapsed: 0,
            len: 0,
            occupied: [0; LEVELS],
            slots: (0..LEVELS * SLOTS)
                .map(|_| Vec::with_capacity(SLOT_PREALLOC))
                .collect(),
        }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The slot for a deadline, measured against the current cursor: the
    /// level is the highest 6-bit digit in which `when` and `elapsed`
    /// differ, the slot is `when`'s digit at that level.
    #[inline]
    fn level_and_slot(&self, when: u64) -> (usize, usize) {
        let masked = when ^ self.elapsed;
        let level = if masked == 0 {
            0
        } else {
            ((63 - masked.leading_zeros()) / LEVEL_BITS) as usize
        };
        let slot = ((when >> (level as u32 * LEVEL_BITS)) & (SLOTS as u64 - 1)) as usize;
        (level, slot)
    }

    #[inline]
    fn bucket(&mut self, level: usize, slot: usize) -> &mut Vec<Entry<T>> {
        &mut self.slots[level * SLOTS + slot]
    }

    /// Insert without touching `len` (shared by push and cascade).
    #[inline]
    fn place(&mut self, e: Entry<T>) {
        let (level, slot) = self.level_and_slot(e.when);
        self.occupied[level] |= 1 << slot;
        self.bucket(level, slot).push(e);
    }

    /// Schedule `value` at `when`. `seq` must be the caller's unique,
    /// monotonically assigned tie-breaker. `when` must be ≥ every deadline
    /// popped so far (the kernel's schedule-into-the-past check enforces a
    /// stronger condition: `when ≥ now ≥ elapsed`).
    pub(crate) fn push(&mut self, when: u64, seq: u64, value: T) {
        debug_assert!(when >= self.elapsed, "push({when}) behind cursor {}", self.elapsed);
        self.place(Entry { when, seq, value });
        self.len += 1;
    }

    /// The earliest pending deadline, without mutating anything.
    ///
    /// The global minimum lives in the lowest occupied slot of the lowest
    /// occupied level: entries at level L differ from `elapsed` first at
    /// digit L (all higher digits equal), so a lower level always means an
    /// earlier deadline, and within a level a lower slot index does too.
    pub(crate) fn next_time(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let level = (0..LEVELS).find(|&l| self.occupied[l] != 0)?;
        let slot = self.occupied[level].trailing_zeros() as u64;
        if level == 0 {
            // A level-0 slot holds exactly one deadline per rotation:
            // slot index == the deadline's low 6 bits, high bits == the
            // cursor's. No scan needed.
            Some((self.elapsed & !(SLOTS as u64 - 1)) | slot)
        } else {
            // Coarser slots mix deadlines; scan the bucket (short: one
            // rotation's worth of a 64×-coarser digit).
            self.slots[level * SLOTS + slot as usize]
                .iter()
                .map(|e| e.when)
                .min()
        }
    }

    /// Remove and return the earliest entry; ties broken by lowest `seq`.
    ///
    /// Cascades (a level-L pop re-homing its slot into levels < L) deliver
    /// same-deadline entries in bucket order, which is *not* seq order, so
    /// the level-0 pop scans its slot for the minimum seq. That scan is
    /// what restores exact `(when, seq)` heap order.
    pub(crate) fn pop(&mut self) -> Option<Popped<T>> {
        loop {
            if self.len == 0 {
                return None;
            }
            let level = (0..LEVELS).find(|&l| self.occupied[l] != 0)?;
            let slot = self.occupied[level].trailing_zeros() as usize;
            if level == 0 {
                let idx = slot;
                let bucket = &mut self.slots[idx];
                let mut best = 0;
                for i in 1..bucket.len() {
                    if bucket[i].seq < bucket[best].seq {
                        best = i;
                    }
                }
                let e = bucket.swap_remove(best);
                if bucket.is_empty() {
                    self.occupied[0] &= !(1u64 << slot);
                }
                self.len -= 1;
                self.elapsed = e.when;
                return Some((e.when, e.seq, e.value));
            }
            // Advance the cursor to the block start of this slot, then
            // cascade its entries down. Every entry re-homes to a level
            // strictly below `level` (it now agrees with `elapsed` on
            // digit `level` and above), so the loop terminates.
            let shift = level as u32 * LEVEL_BITS;
            let upper = shift + LEVEL_BITS;
            let high = if upper >= 64 {
                0
            } else {
                (self.elapsed >> upper) << upper
            };
            self.elapsed = high | ((slot as u64) << shift);
            self.occupied[level] &= !(1u64 << slot);
            let idx = level * SLOTS + slot;
            let mut moved = std::mem::take(&mut self.slots[idx]);
            for e in moved.drain(..) {
                self.place(e);
            }
            // Give the (now empty) bucket its allocation back so the
            // cascade path stays allocation-free in steady state.
            self.slots[idx] = moved;
        }
    }

    /// Cancel the pending entry `(when, seq)`. Returns its payload, or
    /// `None` if no such entry is pending (already fired or cancelled).
    ///
    /// The entry, if live, is exactly at `level_and_slot(when)` under the
    /// current cursor (see the module invariant), so this is one bucket
    /// scan plus a `swap_remove` — the slot is reclaimed immediately.
    pub(crate) fn cancel(&mut self, when: u64, seq: u64) -> Option<T> {
        if self.len == 0 || when < self.elapsed {
            return None;
        }
        let (level, slot) = self.level_and_slot(when);
        let idx = level * SLOTS + slot;
        let pos = self.slots[idx]
            .iter()
            .position(|e| e.seq == seq && e.when == when)?;
        let e = self.slots[idx].swap_remove(pos);
        if self.slots[idx].is_empty() {
            self.occupied[level] &= !(1u64 << slot);
        }
        self.len -= 1;
        Some(e.value)
    }

    /// Drop every pending entry, retaining bucket capacity. The cursor is
    /// kept: deadlines already popped stay in the past.
    pub(crate) fn clear(&mut self) {
        for b in &mut self.slots {
            b.clear();
        }
        self.occupied = [0; LEVELS];
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimerWheel<u32>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some((when, seq, _)) = w.pop() {
            out.push((when, seq));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimerWheel::new();
        w.push(300, 0, 0);
        w.push(100, 1, 0);
        w.push(100, 2, 0);
        w.push(200, 3, 0);
        assert_eq!(w.next_time(), Some(100));
        assert_eq!(drain(&mut w), vec![(100, 1), (100, 2), (200, 3), (300, 0)]);
    }

    #[test]
    fn same_time_entries_pop_in_seq_order_across_cascades() {
        let mut w = TimerWheel::new();
        // Far enough out to land on a high level, forcing cascades.
        let t = 1 << 30;
        for seq in 0..10 {
            w.push(t, seq, seq as u32);
        }
        // Interleave: pop an early event so the cursor moves, then add
        // more same-time entries that initially land on lower levels.
        w.push(5, 100, 0);
        assert_eq!(w.pop().map(|(a, b, _)| (a, b)), Some((5, 100)));
        for seq in 10..20 {
            w.push(t, seq, seq as u32);
        }
        let order: Vec<u64> = drain(&mut w).into_iter().map(|(_, s)| s).collect();
        assert_eq!(order, (0..20).collect::<Vec<u64>>());
    }

    #[test]
    fn next_time_is_stable_and_non_mutating() {
        let mut w = TimerWheel::new();
        w.push(1 << 40, 0, 7);
        for _ in 0..3 {
            assert_eq!(w.next_time(), Some(1 << 40));
        }
        // A later, nearer push must still land correctly after the peeks.
        w.push(3, 1, 8);
        assert_eq!(w.next_time(), Some(3));
        assert_eq!(drain(&mut w), vec![(3, 1), (1 << 40, 0)]);
    }

    #[test]
    fn cancel_removes_entry_and_reclaims_slot() {
        let mut w = TimerWheel::new();
        w.push(50, 0, 10);
        w.push(50, 1, 11);
        w.push(9_000_000, 2, 12);
        assert_eq!(w.cancel(50, 0), Some(10));
        assert_eq!(w.len(), 2);
        // Cancelling again (or with a wrong key) is a no-op.
        assert_eq!(w.cancel(50, 0), None);
        assert_eq!(w.cancel(51, 1), None);
        assert_eq!(drain(&mut w), vec![(50, 1), (9_000_000, 2)]);
        // Cancelled slot fully reclaimed: empty wheel pops nothing.
        assert_eq!(w.len(), 0);
        assert_eq!(w.pop().map(|(a, b, _)| (a, b)), None);
    }

    #[test]
    fn cancel_after_cascade_still_finds_entry() {
        let mut w = TimerWheel::new();
        let far = (1 << 24) + 17;
        w.push(far, 0, 1);
        w.push(1 << 24, 1, 2);
        // Popping the block start cascades `far` down a level.
        assert_eq!(w.pop().map(|(a, b, _)| (a, b)), Some((1 << 24, 1)));
        assert_eq!(w.cancel(far, 0), Some(1));
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn clear_retains_cursor() {
        let mut w = TimerWheel::new();
        w.push(100, 0, 1);
        assert!(w.pop().is_some());
        w.push(200, 1, 2);
        w.clear();
        assert_eq!(w.len(), 0);
        assert_eq!(w.next_time(), None);
        // Cursor survives: a fresh push behind it would be a bug the
        // debug_assert catches; at or ahead of it is fine.
        w.push(100, 2, 3);
        assert_eq!(w.pop().map(|(a, b, _)| (a, b)), Some((100, 2)));
    }

    #[test]
    fn zero_time_and_max_range() {
        let mut w = TimerWheel::new();
        w.push(0, 0, 1);
        w.push(u64::MAX, 1, 2);
        assert_eq!(w.next_time(), Some(0));
        assert_eq!(drain(&mut w), vec![(0, 0), (u64::MAX, 1)]);
    }
}
