//! A hierarchical timer wheel: the kernel's pending-event store.
//!
//! Eleven levels of 64 slots each cover the full `u64` nanosecond range
//! (64^11 = 2^66). Level 0 resolves single nanoseconds; each level above
//! is 64× coarser. Insert is O(1): an event is hashed to a slot by the
//! bits of its deadline that differ from the wheel's `elapsed` cursor.
//!
//! Ready events are served through a **batch slab**: when the wheel's
//! front slot comes due, the *whole slot* — at whatever level — is drained
//! into one contiguous `Vec` by a buffer swap, sorted once by
//! `(when, seq)`, and handed out back-to-front with no bitmap scans,
//! bucket probes, or per-event pointer chasing. This replaces the classic
//! cascade (which re-homed every entry of a drained slot once per level,
//! up to ten times over its lifetime) with a single sort: at drain time
//! the front slot *is* the global minimum run — every other pending entry
//! is strictly later than everything in it — so its sorted order is final.
//!
//! The only wrinkle is events scheduled *while* a batch is being served
//! whose deadlines land inside the live batch's range. A push whose
//! deadline is at or below `batch_max` goes **straight into the batch**
//! at its sorted position (every wheel entry is strictly later, so the
//! batch stays the global minimum run) — as long as the batch is small
//! enough that the insert memmove is cheap. For oversized batches the
//! push falls back to the wheel, and the wheel keeps a running lower
//! bound on its earliest pending deadline (`wheel_min_bound`, lowered by
//! every push, re-tightened by pops); while the batch head is at or
//! below the bound, service is a bare `Vec::pop`, and only an overtaking
//! push costs one exact front scan. The classic scan-and-cascade pop
//! ([`TimerWheel::pop_wheel_single`]) survives for exactly that rare
//! preemption path. The cursor stays **frozen at the drained
//! slot's block start** for the whole batch service, so every wheel
//! residence stays consistent with `elapsed` and cancellation remains a
//! pure recomputation.
//!
//! Determinism contract: [`TimerWheel::pop`] yields entries in exactly
//! ascending `(when, seq)` order — the same order a binary heap with a
//! `(time, seq)` key would produce — which is what keeps simulation runs
//! bit-identical to the old `BinaryHeap` kernel. The proof obligations:
//!
//! 1. *Drain soundness.* The front slot (lowest occupied slot of the
//!    lowest occupied level) holds the pending minimum, and every entry
//!    outside it is strictly later than every entry inside it — lower
//!    levels are empty, same-level slots with higher indices and all
//!    higher levels differ from `elapsed` in a more significant digit.
//! 2. *Interleave soundness.* A post-drain push carries a strictly
//!    higher `seq`, so on a deadline tie it sorts after every live batch
//!    entry. An in-range push (`when ≤ batch_max`) lands at its exact
//!    sorted position in the batch; an out-of-range push leaves the
//!    batch the global minimum run. Only when the batch is too large to
//!    insert into does an earlier push go to the wheel, where the
//!    `wheel_min_bound` check catches it and serves it first through the
//!    classic pop.
//! 3. *Home stability.* `elapsed` only ever advances to a value that is
//!    ≤ every pending wheel deadline, and only to (a) a drained slot's
//!    block start, (b) a popped level-0 entry's deadline (same 64-block),
//!    or (c) a cascaded slot's block start — each preserves every other
//!    entry's `level_and_slot` residence, so [`TimerWheel::cancel`] and
//!    [`TimerWheel::next_time`] stay pure recomputations.

/// log2 of the slot count per level.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Levels; 64^11 ≥ 2^64 so any `u64` deadline fits.
const LEVELS: usize = 11;
/// Eagerly reserved capacity per slot, so pushing into a never-touched
/// slot does not allocate. Steady-state workloads with fewer than this
/// many co-resident entries per slot run allocation-free.
const SLOT_PREALLOC: usize = 4;
/// Largest live batch a push may sorted-insert into. Inserting keeps the
/// wheel untouched (no preemption machinery on later pops) but costs an
/// `O(batch)` memmove, so only small batches — the steady-state shape —
/// take it; giant drains fall back to the wheel + min-bound path.
const BATCH_INSERT_CAP: usize = 512;
/// Highest drained level served by the radix sort (covering
/// `RADIX_MAX_LEVEL * LEVEL_BITS` varying deadline bits, one distribution
/// pass per level). Rarer, coarser drains fall back to the comparison
/// sort — more passes would out-cost it.
const RADIX_MAX_LEVEL: usize = 5;
/// Below this batch size the comparison sort wins (pass setup dominates).
const RADIX_MIN_LEN: usize = 32;

/// One pending event.
struct Entry<T> {
    when: u64,
    seq: u64,
    value: T,
}

/// A popped event: `(deadline, seq, value)`.
pub(crate) type Popped<T> = (u64, u64, T);

/// The wheel. `T` is the event payload type.
pub(crate) struct TimerWheel<T> {
    /// Cursor: the block start of the most recently drained slot, or the
    /// deadline of the most recently wheel-popped entry. Never exceeds
    /// any pending wheel deadline.
    elapsed: u64,
    /// Total pending entries (batch slab included).
    len: usize,
    /// Level summary bitmap: bit `l` set ⇔ `occupied[l] != 0`. Finding
    /// the lowest occupied level is one `trailing_zeros`, not a scan.
    levels: u32,
    /// Per-level occupancy bitmaps: bit `s` set ⇔ `slot(level, s)` is
    /// non-empty.
    occupied: [u64; LEVELS],
    /// `LEVELS * SLOTS` buckets, flattened; index `level * SLOTS + slot`.
    slots: Vec<Vec<Entry<T>>>,
    /// The batch slab: one drained slot, sorted by `(when, seq)`
    /// *descending* so service is `Vec::pop` from the tail.
    batch: Vec<Entry<T>>,
    /// Largest deadline in the live batch: cancellation probes the slab
    /// only for keys at or below it. Stale while the batch is empty —
    /// every reader checks emptiness first.
    batch_max: u64,
    /// A running lower bound on the earliest pending *wheel* deadline
    /// (`u64::MAX` when provably empty). Maintained monotonically-safe:
    /// every push lowers it if needed; pops re-tighten it. While the
    /// batch head is ≤ this bound, no wheel entry can precede it and
    /// batch service is a bare compare + `Vec::pop`; only when the bound
    /// is overtaken does a serve pay one exact `wheel_next_time` scan.
    wheel_min_bound: u64,
    /// True while `wheel_min_bound` is the *exact* earliest pending wheel
    /// deadline, not just a lower bound. Exactness holds after a full
    /// `wheel_next_time` re-tighten and after every push-lowering (a push
    /// below a sound lower bound IS the new minimum); it is lost when the
    /// bound falls back to a bitmap block start (drain, cascade pop) or a
    /// wheel-side cancel removes what might have been the minimum. While
    /// exact, an overtaken batch head pops the wheel directly — no scan.
    wheel_min_exact: bool,
    /// 64 reusable distribution buckets for the drain-time radix sort,
    /// flattened like `slots`. Empty between pops.
    radix: Vec<Vec<Entry<T>>>,
    /// High-water mark of the batch slab over the wheel's lifetime.
    slab_peak: usize,
    /// Deterministic allocation counter: how many times a bucket grew
    /// past its capacity (each growth is one heap reallocation). Zero in
    /// steady state — the bench ratchets this.
    grow_events: u64,
}

impl<T> TimerWheel<T> {
    pub(crate) fn new() -> Self {
        TimerWheel {
            elapsed: 0,
            len: 0,
            levels: 0,
            occupied: [0; LEVELS],
            slots: (0..LEVELS * SLOTS)
                .map(|_| Vec::with_capacity(SLOT_PREALLOC))
                .collect(),
            batch: Vec::with_capacity(SLOT_PREALLOC),
            radix: (0..SLOTS).map(|_| Vec::new()).collect(),
            batch_max: 0,
            wheel_min_bound: u64::MAX,
            wheel_min_exact: true,
            slab_peak: 0,
            grow_events: 0,
        }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// High-water mark of the batch slab (peak entries drained from one
    /// slot and served contiguously).
    #[inline]
    pub(crate) fn slab_peak(&self) -> usize {
        self.slab_peak
    }

    /// How many bucket capacity growths (heap reallocations) the wheel
    /// has performed since construction. Deterministic: depends only on
    /// the schedule, never on wall-clock or addresses.
    #[inline]
    pub(crate) fn grow_events(&self) -> u64 {
        self.grow_events
    }

    /// The slot for a deadline, measured against the current cursor: the
    /// level is the highest 6-bit digit in which `when` and `elapsed`
    /// differ, the slot is `when`'s digit at that level.
    #[inline]
    fn level_and_slot(&self, when: u64) -> (usize, usize) {
        // `| 1` folds the `when == elapsed` case into level 0 without a
        // branch (bit 0 never changes the level).
        let masked = (when ^ self.elapsed) | 1;
        let level = ((63 - masked.leading_zeros()) / LEVEL_BITS) as usize;
        let slot = ((when >> (level as u32 * LEVEL_BITS)) & (SLOTS as u64 - 1)) as usize;
        (level, slot)
    }

    /// Insert without touching `len` (shared by push and cascade).
    #[inline]
    fn place(&mut self, e: Entry<T>) {
        let (level, slot) = self.level_and_slot(e.when);
        self.occupied[level] |= 1 << slot;
        self.levels |= 1 << level;
        let bucket = self
            .slots
            .get_mut(level * SLOTS + slot)
            .expect("invariant: level < LEVELS and slot < SLOTS, so the flat index is in range");
        if bucket.len() == bucket.capacity() {
            // `push` below reallocates; count it so the bench can report
            // allocations-per-event without an allocator shim.
            self.grow_events += 1;
        }
        bucket.push(e);
    }

    /// Schedule `value` at `when`. `seq` must be the caller's unique,
    /// monotonically assigned tie-breaker. `when` must be ≥ every deadline
    /// popped so far (the kernel's schedule-into-the-past check enforces a
    /// stronger condition: `when ≥ now ≥ elapsed`).
    pub(crate) fn push(&mut self, when: u64, seq: u64, value: T) {
        debug_assert!(when >= self.elapsed, "push({when}) behind cursor {}", self.elapsed);
        self.len += 1;
        // A push landing inside a small live batch's range goes straight
        // into the batch at its sorted position: every wheel entry is
        // strictly later than `batch_max`, so the batch stays the global
        // minimum run and later pops never consult the wheel for it.
        if !self.batch.is_empty() && when <= self.batch_max && self.batch.len() <= BATCH_INSERT_CAP
        {
            return self.insert_into_batch(when, seq, value);
        }
        self.place(Entry { when, seq, value });
        if when < self.wheel_min_bound {
            // Below a sound lower bound on the old minimum, so `when` IS
            // the new exact minimum.
            self.wheel_min_bound = when;
            self.wheel_min_exact = true;
        }
    }

    /// Sorted-insert into the live batch (see [`TimerWheel::push`]).
    /// Out-of-line so the push fast path stays small enough to inline.
    #[inline(never)]
    fn insert_into_batch(&mut self, when: u64, seq: u64, value: T) {
        let key = ((when as u128) << 64) | seq as u128;
        let pos = self
            .batch
            .partition_point(|e| (((e.when as u128) << 64) | e.seq as u128) > key);
        if self.batch.len() == self.batch.capacity() {
            self.grow_events += 1;
        }
        self.batch.insert(pos, Entry { when, seq, value });
        if self.batch.len() > self.slab_peak {
            self.slab_peak = self.batch.len();
        }
    }

    /// The block start of `(level, slot)` under the current cursor: the
    /// cursor's digits above `level`, `slot` at `level`, zeros below.
    #[inline]
    fn block_start(&self, level: usize, slot: usize) -> u64 {
        let shift = level as u32 * LEVEL_BITS;
        let upper = shift + LEVEL_BITS;
        let high = if upper >= 64 {
            0
        } else {
            (self.elapsed >> upper) << upper
        };
        high | ((slot as u64) << shift)
    }

    /// The earliest pending *wheel* deadline (ignores the batch slab).
    ///
    /// The global wheel minimum lives in the lowest occupied slot of the
    /// lowest occupied level: entries at level L differ from `elapsed`
    /// first at digit L (all higher digits equal), so a lower level
    /// always means an earlier deadline, and within a level a lower slot
    /// index does too.
    fn wheel_next_time(&self) -> Option<u64> {
        if self.levels == 0 {
            return None;
        }
        let level = self.levels.trailing_zeros() as usize;
        let slot = self
            .occupied
            .get(level)
            .expect("invariant: levels bit set only for level < LEVELS")
            .trailing_zeros() as u64;
        if level == 0 {
            // A level-0 slot holds exactly one deadline per rotation:
            // slot index == the deadline's low 6 bits, high bits == the
            // cursor's. No scan needed.
            Some((self.elapsed & !(SLOTS as u64 - 1)) | slot)
        } else {
            // Coarser slots mix deadlines; scan the bucket.
            self.slots
                .get(level * SLOTS + slot as usize)
                .expect("invariant: level < LEVELS and slot < SLOTS, so the flat index is in range")
                .iter()
                .map(|e| e.when)
                .min()
        }
    }

    /// The earliest pending deadline, without mutating anything.
    pub(crate) fn next_time(&self) -> Option<u64> {
        match self.batch.last() {
            None => self.wheel_next_time(),
            Some(head) => {
                if head.when <= self.wheel_min_bound {
                    return Some(head.when);
                }
                if self.wheel_min_exact {
                    // The bound is the exact wheel minimum and it precedes
                    // the batch head (`head.when > bound` implies a
                    // non-empty wheel: an empty one is bounded by MAX).
                    return Some(self.wheel_min_bound);
                }
                match self.wheel_next_time() {
                    Some(nt) if nt < head.when => Some(nt),
                    _ => Some(head.when),
                }
            }
        }
    }

    /// Serve the batch head. Callers guarantee no pending wheel entry
    /// precedes it. The cursor does not move: it stays at the drained
    /// slot's block start (≤ every pending deadline), keeping every
    /// wheel residence valid.
    #[inline]
    fn serve_batch(&mut self) -> Option<Popped<T>> {
        let e = self.batch.pop()?;
        self.len -= 1;
        Some((e.when, e.seq, e.value))
    }

    /// A cheap, sound lower bound on the earliest pending *wheel*
    /// deadline: the block start of the front occupied slot. Bitmap-only —
    /// no bucket scan — and immediately after a drain it is provably
    /// ≥ `batch_max` (the next front slot's block lies entirely beyond the
    /// drained block), so whole batches serve without any exact scans.
    #[inline]
    fn wheel_front_bound(&self) -> u64 {
        if self.levels == 0 {
            return u64::MAX;
        }
        let level = self.levels.trailing_zeros() as usize;
        let slot = self
            .occupied
            .get(level)
            .expect("invariant: levels bit set only for level < LEVELS")
            .trailing_zeros() as usize;
        self.block_start(level, slot)
    }

    /// Remove and return the earliest entry; ties broken by lowest `seq`.
    ///
    /// Service order: the batch slab (already sorted; see the module
    /// docs) unless an interleaving wheel entry is strictly earlier, in
    /// which case the classic single pop runs. When both slab and
    /// interleavers are exhausted, the wheel's front slot is drained
    /// whole into the slab — one buffer swap, one sort — and service
    /// continues from there.
    #[inline]
    pub(crate) fn pop(&mut self) -> Option<Popped<T>> {
        if let Some(head) = self.batch.last() {
            // A deadline tie goes to the batch entry: wheel entries at
            // the same instant were pushed after the drain and carry
            // strictly higher seqs.
            if head.when <= self.wheel_min_bound {
                return self.serve_batch();
            }
            return self.pop_contended();
        }
        self.pop_drain()
    }

    /// The overtaken-bound path: a post-drain push got ahead of the batch
    /// head. Pay one exact scan, then either let the earlier wheel entry
    /// go first or re-tighten the bound and serve the batch. Out-of-line
    /// to keep [`TimerWheel::pop`]'s fast path inlinable.
    #[inline(never)]
    fn pop_contended(&mut self) -> Option<Popped<T>> {
        let head_when = self
            .batch
            .last()
            .expect("invariant: pop_contended runs only with a live batch")
            .when;
        if self.wheel_min_exact {
            // The bound is the exact wheel minimum and the batch head is
            // strictly behind it: pop the wheel directly, no bucket scan.
            debug_assert_eq!(self.wheel_next_time(), Some(self.wheel_min_bound));
            let popped = self.pop_wheel_single();
            self.wheel_min_bound = self.wheel_front_bound();
            self.wheel_min_exact = false;
            return popped;
        }
        let nt = self.wheel_next_time();
        match nt {
            Some(n) if n < head_when => {
                let popped = self.pop_wheel_single();
                self.wheel_min_bound = self.wheel_front_bound();
                self.wheel_min_exact = false;
                popped
            }
            _ => {
                // The scan's result is the exact minimum — keep it.
                self.wheel_min_bound = nt.unwrap_or(u64::MAX);
                self.wheel_min_exact = true;
                self.serve_batch()
            }
        }
    }

    /// The empty-batch path: drain the wheel's front slot into the slab
    /// (or serve a single-entry slot directly). Out-of-line: it runs once
    /// per batch, not once per pop.
    #[inline(never)]
    fn pop_drain(&mut self) -> Option<Popped<T>> {
        if self.len == 0 {
            return None;
        }
        // Drain the front slot — the global minimum run — into the slab.
        let level = self.levels.trailing_zeros() as usize;
        let occ = self
            .occupied
            .get_mut(level)
            .expect("invariant: len > 0 implies a summary bit for some level < LEVELS");
        let slot = occ.trailing_zeros() as usize;
        *occ &= !(1u64 << slot);
        if *occ == 0 {
            self.levels &= !(1u32 << level);
        }
        let start = self.block_start(level, slot);
        let bucket = self
            .slots
            .get_mut(level * SLOTS + slot)
            .expect("invariant: level < LEVELS and slot < SLOTS, so the flat index is in range");
        if bucket.len() == 1 {
            // Single-entry slot: serve directly, skipping the slab. All
            // lower levels are empty, so advancing the cursor to the
            // entry's own deadline preserves every other residence.
            let e = bucket.pop().expect("invariant: an occupied slot is never empty");
            self.len -= 1;
            self.elapsed = e.when;
            // Still a valid lower bound: `e` was the wheel minimum.
            self.wheel_min_bound = e.when;
            self.wheel_min_exact = false;
            return Some((e.when, e.seq, e.value));
        }
        self.elapsed = start;
        std::mem::swap(&mut self.batch, bucket);
        self.sort_batch(level);
        self.batch_max = self
            .batch
            .first()
            .expect("invariant: an occupied slot is never empty")
            .when;
        self.wheel_min_bound = self.wheel_front_bound();
        self.wheel_min_exact = false;
        if self.batch.len() > self.slab_peak {
            self.slab_peak = self.batch.len();
        }
        self.serve_batch()
    }

    /// Sort the freshly drained batch descending by `(when, seq)` so
    /// service is `Vec::pop` from the tail.
    ///
    /// Entries drained from a level-`level` slot agree on every deadline
    /// digit at `level` and above, so only `level * LEVEL_BITS` low bits
    /// order them: an LSD counting distribution over those 6-bit digits
    /// (one stable pass per level through the 64 reusable `radix`
    /// buckets) replaces the comparison sort's `O(n log n)` key
    /// construction and compare chain with `2 * level` linear moves.
    /// Same-deadline runs are then ordered by `seq` in a final pass —
    /// bucket order is not seq order once cascades have interleaved
    /// pushes. Coarse (rare) or tiny drains keep the comparison sort.
    fn sort_batch(&mut self, level: usize) {
        if level > RADIX_MAX_LEVEL || self.batch.len() < RADIX_MIN_LEN {
            // One branch-light u128 key compare beats a lexicographic
            // tuple compare inside the sort's hot loop.
            self.batch
                .sort_unstable_by_key(|e| std::cmp::Reverse(((e.when as u128) << 64) | e.seq as u128));
            return;
        }
        for pass in 0..level {
            let shift = (pass as u32) * LEVEL_BITS;
            let mut grows = 0u64;
            for e in self.batch.drain(..) {
                let d = ((e.when >> shift) as usize) & (SLOTS - 1);
                let b = self
                    .radix
                    .get_mut(d)
                    .expect("invariant: a masked 6-bit digit indexes the 64 radix buckets");
                if b.len() == b.capacity() {
                    grows += 1;
                }
                b.push(e);
            }
            self.grow_events += grows;
            // Collect descending (digit 63 first): after the last pass the
            // batch is descending by deadline, ties in bucket order.
            for d in (0..SLOTS).rev() {
                let b = self
                    .radix
                    .get_mut(d)
                    .expect("invariant: d < SLOTS indexes the 64 radix buckets");
                self.batch.append(b);
            }
        }
        // Order same-deadline runs by seq, descending like the whole slab.
        for run in self.batch.chunk_by_mut(|a, b| a.when == b.when) {
            if run.len() > 1 {
                run.sort_unstable_by_key(|e| std::cmp::Reverse(e.seq));
            }
        }
    }

    /// The classic cascading pop, used only while a live batch has
    /// interleaving wheel entries in front of its head. Cascades re-home
    /// a drained slot's entries one level down per pass; the level-0 pop
    /// scans its slot for the minimum seq.
    fn pop_wheel_single(&mut self) -> Option<Popped<T>> {
        loop {
            if self.levels == 0 {
                return None;
            }
            let level = self.levels.trailing_zeros() as usize;
            let slot = self
                .occupied
                .get(level)
                .expect("invariant: levels bit set only for level < LEVELS")
                .trailing_zeros() as usize;
            if level == 0 {
                let bucket = self
                    .slots
                    .get_mut(slot)
                    .expect("invariant: slot < SLOTS, so the level-0 index is in range");
                let best = bucket
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, e)| e.seq)
                    .map(|(i, _)| i)
                    .expect("invariant: an occupied slot is never empty");
                let e = bucket.swap_remove(best);
                if bucket.is_empty() {
                    let occ = self
                        .occupied
                        .get_mut(0)
                        .expect("invariant: level 0 always exists");
                    *occ &= !(1u64 << slot);
                    if *occ == 0 {
                        self.levels &= !1;
                    }
                }
                self.len -= 1;
                self.elapsed = e.when;
                return Some((e.when, e.seq, e.value));
            }
            // Advance the cursor to the block start of this slot, then
            // cascade its entries down. Every entry re-homes to a level
            // strictly below `level` (it now agrees with `elapsed` on
            // digit `level` and above), so the loop terminates.
            self.elapsed = self.block_start(level, slot);
            let occ = self
                .occupied
                .get_mut(level)
                .expect("invariant: levels bit set only for level < LEVELS");
            *occ &= !(1u64 << slot);
            if *occ == 0 {
                self.levels &= !(1u32 << level);
            }
            let idx = level * SLOTS + slot;
            let mut moved = std::mem::take(
                self.slots
                    .get_mut(idx)
                    .expect("invariant: level < LEVELS and slot < SLOTS, so the flat index is in range"),
            );
            for e in moved.drain(..) {
                self.place(e);
            }
            // Give the (now empty) bucket its allocation back so the
            // cascade path stays allocation-free in steady state.
            *self
                .slots
                .get_mut(idx)
                .expect("invariant: level < LEVELS and slot < SLOTS, so the flat index is in range") =
                moved;
        }
    }

    /// Cancel the pending entry `(when, seq)`. Returns its payload, or
    /// `None` if no such entry is pending (already fired or cancelled).
    ///
    /// A live entry is either in the batch slab or exactly at
    /// `level_and_slot(when)` under the current cursor (home stability,
    /// module docs), so this is at most two bucket scans plus a remove —
    /// the slot is reclaimed immediately. The slab remove is an
    /// order-preserving `Vec::remove` (cancels are rare; slab order must
    /// stay sorted).
    pub(crate) fn cancel(&mut self, when: u64, seq: u64) -> Option<T> {
        if !self.batch.is_empty() && when <= self.batch_max {
            if let Some(pos) = self.batch.iter().position(|e| e.seq == seq && e.when == when) {
                let e = self.batch.remove(pos);
                self.len -= 1;
                return Some(e.value);
            }
            // Not in the slab: may be a same-range entry pushed after
            // the drain, which lives in the wheel — fall through.
        }
        if self.len == 0 || when < self.elapsed {
            return None;
        }
        let (level, slot) = self.level_and_slot(when);
        let idx = level * SLOTS + slot;
        let bucket = self
            .slots
            .get_mut(idx)
            .expect("invariant: level_and_slot returns level < LEVELS and slot < SLOTS");
        let pos = bucket.iter().position(|e| e.seq == seq && e.when == when)?;
        let e = bucket.swap_remove(pos);
        if bucket.is_empty() {
            self.occupied[level] &= !(1u64 << slot);
            if self.occupied[level] == 0 {
                self.levels &= !(1u32 << level);
            }
        }
        self.len -= 1;
        // The removed entry may have been the exact minimum; the bound
        // stays sound (a removal can only raise the true minimum) but is
        // no longer known to be tight.
        self.wheel_min_exact = false;
        Some(e.value)
    }

    /// Drop every pending entry, retaining bucket and slab capacity. The
    /// cursor is kept: deadlines already popped stay in the past.
    pub(crate) fn clear(&mut self) {
        for b in &mut self.slots {
            b.clear();
        }
        self.batch.clear();
        self.batch_max = 0;
        self.wheel_min_bound = u64::MAX;
        self.wheel_min_exact = true;
        self.occupied = [0; LEVELS];
        self.levels = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimerWheel<u32>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some((when, seq, _)) = w.pop() {
            out.push((when, seq));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimerWheel::new();
        w.push(300, 0, 0);
        w.push(100, 1, 0);
        w.push(100, 2, 0);
        w.push(200, 3, 0);
        assert_eq!(w.next_time(), Some(100));
        assert_eq!(drain(&mut w), vec![(100, 1), (100, 2), (200, 3), (300, 0)]);
    }

    #[test]
    fn same_time_entries_pop_in_seq_order_across_cascades() {
        let mut w = TimerWheel::new();
        // Far enough out to land on a high level, forcing cascades.
        let t = 1 << 30;
        for seq in 0..10 {
            w.push(t, seq, seq as u32);
        }
        // Interleave: pop an early event so the cursor moves, then add
        // more same-time entries that initially land on lower levels.
        w.push(5, 100, 0);
        assert_eq!(w.pop().map(|(a, b, _)| (a, b)), Some((5, 100)));
        for seq in 10..20 {
            w.push(t, seq, seq as u32);
        }
        let order: Vec<u64> = drain(&mut w).into_iter().map(|(_, s)| s).collect();
        assert_eq!(order, (0..20).collect::<Vec<u64>>());
    }

    #[test]
    fn next_time_is_stable_and_non_mutating() {
        let mut w = TimerWheel::new();
        w.push(1 << 40, 0, 7);
        for _ in 0..3 {
            assert_eq!(w.next_time(), Some(1 << 40));
        }
        // A later, nearer push must still land correctly after the peeks.
        w.push(3, 1, 8);
        assert_eq!(w.next_time(), Some(3));
        assert_eq!(drain(&mut w), vec![(3, 1), (1 << 40, 0)]);
    }

    #[test]
    fn cancel_removes_entry_and_reclaims_slot() {
        let mut w = TimerWheel::new();
        w.push(50, 0, 10);
        w.push(50, 1, 11);
        w.push(9_000_000, 2, 12);
        assert_eq!(w.cancel(50, 0), Some(10));
        assert_eq!(w.len(), 2);
        // Cancelling again (or with a wrong key) is a no-op.
        assert_eq!(w.cancel(50, 0), None);
        assert_eq!(w.cancel(51, 1), None);
        assert_eq!(drain(&mut w), vec![(50, 1), (9_000_000, 2)]);
        // Cancelled slot fully reclaimed: empty wheel pops nothing.
        assert_eq!(w.len(), 0);
        assert_eq!(w.pop().map(|(a, b, _)| (a, b)), None);
    }

    #[test]
    fn cancel_after_cascade_still_finds_entry() {
        let mut w = TimerWheel::new();
        let far = (1 << 24) + 17;
        w.push(far, 0, 1);
        w.push(1 << 24, 1, 2);
        // Popping the earlier entry drains the shared slot into the slab.
        assert_eq!(w.pop().map(|(a, b, _)| (a, b)), Some((1 << 24, 1)));
        assert_eq!(w.cancel(far, 0), Some(1));
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn cancel_reaches_into_the_batch_slab() {
        let mut w = TimerWheel::new();
        // Three same-deadline entries: the first pop drains the slot into
        // the slab and serves seq 0, leaving seqs 1 and 2 in the slab.
        w.push(70, 0, 10);
        w.push(70, 1, 11);
        w.push(70, 2, 12);
        assert_eq!(w.pop().map(|(a, b, _)| (a, b)), Some((70, 0)));
        assert_eq!(w.cancel(70, 1), Some(11));
        assert_eq!(w.len(), 1);
        // A same-deadline push after the drain is sorted-inserted into
        // the live batch; cancel must find it there too.
        w.push(70, 3, 13);
        assert_eq!(w.cancel(70, 3), Some(13));
        assert_eq!(drain(&mut w), vec![(70, 2)]);
    }

    #[test]
    fn same_deadline_push_during_batch_service_keeps_seq_order() {
        let mut w = TimerWheel::new();
        for seq in 0..4 {
            w.push(40, seq, seq as u32);
        }
        // First pop drains the slot into the slab.
        assert_eq!(w.pop().map(|(a, b, _)| (a, b)), Some((40, 0)));
        // A handler pushes two more entries at the same deadline: they
        // land in the wheel with higher seqs and must fire *after* the
        // remaining slab entries.
        w.push(40, 4, 4);
        w.push(40, 5, 5);
        assert_eq!(w.next_time(), Some(40));
        let order: Vec<u64> = drain(&mut w).into_iter().map(|(_, s)| s).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn earlier_push_during_batch_service_preempts_the_batch() {
        let mut w = TimerWheel::new();
        // Two entries share a coarse slot (level 2 under cursor 0):
        // draining it makes a multi-entry batch spanning [1 << 12, max].
        let base = 1 << 12;
        w.push(base + 3000, 0, 30);
        w.push(base + 10, 1, 10);
        assert_eq!(w.pop().map(|(a, b, _)| (a, b)), Some((base + 10, 1)));
        // Handler schedules *inside* the live batch's range, earlier
        // than the remaining batch head: it must fire first (here via a
        // sorted insert into the small live batch).
        w.push(base + 100, 2, 1);
        w.push(base + 5000, 3, 50); // beyond nothing — also in range, later
        assert_eq!(w.next_time(), Some(base + 100));
        assert_eq!(
            drain(&mut w),
            vec![(base + 100, 2), (base + 3000, 0), (base + 5000, 3)]
        );
    }

    #[test]
    fn oversized_batch_routes_earlier_pushes_through_the_wheel() {
        // A batch too large for sorted inserts exercises the fallback:
        // in-range pushes go to the wheel, lower `wheel_min_bound`, and
        // preempt batch service through the classic cascading pop.
        let mut w = TimerWheel::new();
        let base = 1 << 18; // level-3 block under cursor 0
        let n = (BATCH_INSERT_CAP + 2) as u64;
        for seq in 0..n {
            w.push(base + 2 * seq + 10, seq, seq as u32);
        }
        assert_eq!(w.pop().map(|(a, b, _)| (a, b)), Some((base + 10, 0)));
        assert!(w.slab_peak() > BATCH_INSERT_CAP);
        // Earlier than the remaining batch head — must fire next, from
        // the wheel; a later in-range push must slot into place too.
        w.push(base + 5, n, 1111);
        w.push(base + 14, n + 1, 2222);
        assert_eq!(w.next_time(), Some(base + 5));
        let order = drain(&mut w);
        assert_eq!(order.len(), (n + 1) as usize);
        assert_eq!(order[0], (base + 5, n));
        assert_eq!(order[1], (base + 12, 1));
        assert_eq!(order[2], (base + 14, 2));
        assert_eq!(order[3], (base + 14, n + 1));
        // The tail stays in exact (when, seq) order.
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted);
    }

    #[test]
    fn slab_and_allocation_counters_track_batches() {
        let mut w = TimerWheel::new();
        assert_eq!(w.slab_peak(), 0);
        assert_eq!(w.grow_events(), 0);
        // SLOT_PREALLOC entries fit without growing; one more grows the
        // bucket exactly once.
        for seq in 0..=SLOT_PREALLOC as u64 {
            w.push(90, seq, 0u32);
        }
        assert_eq!(w.grow_events(), 1);
        assert_eq!(w.pop().map(|(_, s, _)| s), Some(0));
        // The whole slot (all 5 entries) was drained into the slab.
        assert_eq!(w.slab_peak(), SLOT_PREALLOC + 1);
        drain(&mut w);
        assert_eq!(w.slab_peak(), SLOT_PREALLOC + 1);
    }

    #[test]
    fn clear_retains_cursor() {
        let mut w = TimerWheel::new();
        w.push(100, 0, 1);
        assert!(w.pop().is_some());
        w.push(200, 1, 2);
        w.clear();
        assert_eq!(w.len(), 0);
        assert_eq!(w.next_time(), None);
        // Cursor survives: a fresh push behind it would be a bug the
        // debug_assert catches; at or ahead of it is fine.
        w.push(100, 2, 3);
        assert_eq!(w.pop().map(|(a, b, _)| (a, b)), Some((100, 2)));
    }

    #[test]
    fn clear_drops_batch_slab_entries_too() {
        let mut w = TimerWheel::new();
        w.push(10, 0, 1);
        w.push(10, 1, 2);
        assert!(w.pop().is_some()); // second entry now lives in the slab
        w.clear();
        assert_eq!(w.len(), 0);
        assert_eq!(w.next_time(), None);
        assert!(w.pop().is_none());
    }

    #[test]
    fn zero_time_and_max_range() {
        let mut w = TimerWheel::new();
        w.push(0, 0, 1);
        w.push(u64::MAX, 1, 2);
        assert_eq!(w.next_time(), Some(0));
        assert_eq!(drain(&mut w), vec![(0, 0), (u64::MAX, 1)]);
    }
}

