//! # tsuru-sim — deterministic discrete-event simulation kernel
//!
//! The foundation of the Tsuru backup-system reproduction: a single-threaded,
//! fully deterministic discrete-event simulator plus the measurement and
//! randomness primitives every other crate builds on.
//!
//! - [`Sim`] — the event kernel: a time-ordered queue of one-shot closures
//!   over a user-supplied world state.
//! - [`SimTime`] / [`SimDuration`] — integer-nanosecond time.
//! - [`DetRng`] / [`Zipf`] — seeded, splittable randomness.
//! - [`Histogram`], [`Counter`], [`TimeSeries`] — measurement.
//! - [`ServiceStation`], [`RatePipe`] — analytic queueing/bandwidth models.
//!
//! Determinism contract: given the same seed and the same sequence of API
//! calls, every run produces bit-identical results on every platform. Event
//! ties are broken by insertion order and no wall-clock or OS entropy is
//! consulted anywhere in the workspace's simulation path.
//!
//! ```
//! use tsuru_sim::{Sim, SimDuration, SimTime};
//!
//! let mut sim: Sim<u32> = Sim::new();
//! let mut counter = 0u32;
//! sim.schedule_at(SimTime::from_millis(1), |c: &mut u32, sim| {
//!     *c += 1;
//!     sim.schedule_in(SimDuration::from_millis(1), |c: &mut u32, _| *c += 10);
//! });
//! sim.run(&mut counter);
//! assert_eq!(counter, 11);
//! assert_eq!(sim.now(), SimTime::from_millis(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kernel;
mod metrics;
mod queue;
mod rng;
mod time;
mod wheel;

pub use kernel::{DynEvent, Event, EventFn, Sim, TimerToken};
pub use metrics::{Counter, Histogram, Summary, ThroughputReport, TimeSeries};
pub use queue::{RatePipe, ServiceStation};
pub use rng::{DetRng, Zipf};
pub use time::{SimDuration, SimTime, NANOS_PER_MICRO, NANOS_PER_MILLI, NANOS_PER_SEC};
