//! Proof of the typed-event kernel's headline property: scheduling and
//! dispatching a typed event costs **zero heap allocations** in steady
//! state. A counting global allocator wraps the system allocator; after a
//! warm-up phase (which lets every touched wheel slot reach its reserved
//! capacity), a long self-rescheduling event chain must not allocate at
//! all.
//!
//! This lives in its own integration-test binary because a global
//! allocator is process-wide: no other test may share the process.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use tsuru_sim::{Event, EventFn, Sim, SimDuration};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Counting is gated per-thread: libtest's monitor thread allocates on
    // its own schedule and must not pollute the measurement.
    static TRACK: Cell<bool> = const { Cell::new(false) };
}

// SAFETY: pure pass-through to the system allocator; the count is the only
// added behaviour and does not affect the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: sound iff the system allocator is — we only count and forward.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // try_with: TLS may be mid-teardown; missing a count there is fine.
        let _ = TRACK.try_with(|t| {
            if t.get() {
                ALLOCS.fetch_add(1, Ordering::Relaxed);
            }
        });
        // SAFETY: caller upholds GlobalAlloc's contract; forwarded as-is.
        unsafe { System.alloc(layout) }
    }
    // SAFETY: sound iff the system allocator is — pure forwarding.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from `alloc` above, which returned
        // system-allocator memory for this layout.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

/// A typed event chain: each dispatch bumps the state counter and
/// reschedules itself until `left` runs out. No variant holds heap data.
enum Tick {
    Step { left: u32 },
    #[allow(dead_code)]
    Dyn(EventFn<u64, Tick>),
}

impl Event<u64> for Tick {
    fn from_fn(f: EventFn<u64, Self>) -> Self {
        Tick::Dyn(f)
    }
    fn dispatch(self, state: &mut u64, sim: &mut Sim<u64, Self>) {
        match self {
            Tick::Step { left } => {
                *state += 1;
                if left > 0 {
                    // A spread of delays exercises multiple wheel levels
                    // (and therefore cascades), not just slot 0.
                    let delay = 1 + (*state % 7) * 97 + (*state % 3) * 4096;
                    sim.schedule_event_in(SimDuration::from_nanos(delay), Tick::Step {
                        left: left - 1,
                    });
                }
            }
            Tick::Dyn(f) => f(state, sim),
        }
    }
}

#[test]
fn typed_event_chain_allocates_nothing_in_steady_state() {
    let mut count = 0u64;
    let mut sim: Sim<u64, Tick> = Sim::new();
    sim.schedule_event_in(SimDuration::from_nanos(1), Tick::Step { left: 50_000 });

    // Warm-up: let the wheel's slot vectors reach steady capacity.
    for _ in 0..1_000 {
        assert!(sim.step(&mut count));
    }

    TRACK.with(|t| t.set(true));
    while sim.step(&mut count) {}
    TRACK.with(|t| t.set(false));

    assert_eq!(count, 50_001, "every event fired exactly once");
    assert_eq!(
        ALLOCS.load(Ordering::Relaxed),
        0,
        "typed event schedule+dispatch must not allocate in steady state"
    );
}
