//! Property-based tests of the timer-wheel kernel against a reference
//! binary-heap model.
//!
//! The wheel replaced a `BinaryHeap<(time, seq)>`; the determinism contract
//! requires the two to pop in *exactly* the same `(time, seq)` order under
//! any interleaving of schedules, cancellations, and time advances. These
//! tests drive both side by side over arbitrary operation scripts.

use proptest::prelude::*;
use tsuru_sim::{Event, EventFn, Sim, SimTime, TimerToken};

/// Firing log: `(fire_time_nanos, id)` per dispatched event.
type Log = Vec<(u64, u64)>;

/// Minimal typed event for the harness (the closure arm is unused but
/// keeps the enum honest about the kernel's escape hatch).
enum Ev {
    Rec { id: u64 },
    #[allow(dead_code)]
    Dyn(EventFn<Log, Ev>),
}

impl Event<Log> for Ev {
    fn from_fn(f: EventFn<Log, Self>) -> Self {
        Ev::Dyn(f)
    }
    fn dispatch(self, state: &mut Log, sim: &mut Sim<Log, Self>) {
        match self {
            Ev::Rec { id } => state.push((sim.now().as_nanos(), id)),
            Ev::Dyn(f) => f(state, sim),
        }
    }
}

/// One step of an operation script.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule an event `offset` nanoseconds after the current instant.
    Schedule { offset: u64 },
    /// Cancel the `k`-th issued token (mod the number issued so far).
    Cancel { k: usize },
    /// Advance simulated time by `dt` nanoseconds, firing due events.
    Advance { dt: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..5_000).prop_map(|offset| Op::Schedule { offset }),
        2 => (0usize..64).prop_map(|k| Op::Cancel { k }),
        2 => (0u64..8_000).prop_map(|dt| Op::Advance { dt }),
    ]
}

/// Reference model of the kernel queue: a plain sorted pending set.
#[derive(Default)]
struct Model {
    /// `(time, id)` still pending; `id` doubles as the model's seq because
    /// both counters advance by one per schedule call.
    pending: Vec<(u64, u64)>,
    /// Everything the model has fired, in order: `(fire_time, id)`.
    log: Log,
    now: u64,
    next_id: u64,
}

impl Model {
    fn schedule(&mut self, at: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push((at, id));
        id
    }

    /// Cancel by id; true if it was still pending (mirrors `Sim::cancel`).
    fn cancel(&mut self, id: u64) -> bool {
        match self.pending.iter().position(|&(_, i)| i == id) {
            Some(p) => {
                self.pending.remove(p);
                true
            }
            None => false,
        }
    }

    /// Fire everything due at or before `horizon` in `(time, seq)` order —
    /// the reference BinaryHeap pop order.
    fn advance(&mut self, horizon: u64) {
        loop {
            let Some(&min) = self.pending.iter().min() else { break };
            if min.0 > horizon {
                break;
            }
            self.pending.retain(|&e| e != min);
            self.now = min.0;
            self.log.push(min);
        }
        self.now = self.now.max(horizon);
    }
}

/// Run one script through both implementations and return
/// `(kernel log, model log, kernel, model, issued tokens)`.
fn run_script(ops: &[Op]) -> (Sim<Log, Ev>, Model, Log) {
    let mut sim: Sim<Log, Ev> = Sim::new();
    let mut log: Log = Vec::new();
    let mut model = Model::default();
    let mut tokens: Vec<(TimerToken, u64)> = Vec::new();
    for op in ops {
        match *op {
            Op::Schedule { offset } => {
                let at = model.now + offset;
                let id = model.next_id;
                let tok = sim.schedule_event_at(SimTime::from_nanos(at), Ev::Rec { id });
                let mid = model.schedule(at);
                assert_eq!(id, mid);
                tokens.push((tok, id));
            }
            Op::Cancel { k } => {
                if tokens.is_empty() {
                    continue;
                }
                let (tok, id) = tokens[k % tokens.len()];
                let kernel_hit = sim.cancel(tok);
                let model_hit = model.cancel(id);
                assert_eq!(
                    kernel_hit, model_hit,
                    "cancel of id {id} disagreed with the model"
                );
            }
            Op::Advance { dt } => {
                let horizon = model.now + dt;
                sim.run_until(&mut log, SimTime::from_nanos(horizon));
                model.advance(horizon);
                assert_eq!(sim.now().as_nanos(), model.now);
            }
        }
    }
    // Drain whatever is left so every surviving event fires.
    sim.run(&mut log);
    model.advance(u64::MAX);
    (sim, model, log)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The wheel pops in exactly the reference heap's `(time, seq)` order
    /// under arbitrary interleaved schedule/cancel/advance scripts.
    #[test]
    fn wheel_matches_binary_heap_model(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let (sim, model, log) = run_script(&ops);
        prop_assert_eq!(&log, &model.log, "pop order diverged from the reference model");
        prop_assert_eq!(sim.pending(), 0);
        prop_assert!(model.pending.is_empty());
    }

    /// Cancelled events never fire, every non-cancelled event fires exactly
    /// once, and the wheel's slots are reclaimed (len returns to zero).
    #[test]
    fn cancelled_events_never_fire(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let (sim, model, log) = run_script(&ops);
        // Every id the model still knows as fired must appear exactly once;
        // every other issued id was cancelled and must not appear at all.
        let fired: std::collections::HashSet<u64> = model.log.iter().map(|&(_, id)| id).collect();
        prop_assert_eq!(log.len(), model.log.len());
        for id in 0..model.next_id {
            let n = log.iter().filter(|&&(_, i)| i == id).count();
            if fired.contains(&id) {
                prop_assert_eq!(n, 1, "id {} should fire exactly once", id);
            } else {
                prop_assert_eq!(n, 0, "cancelled id {} fired", id);
            }
        }
        // Slot reclamation: the queue is empty and reusable afterwards.
        prop_assert_eq!(sim.pending(), 0);
        let mut sim = sim;
        let mut log2: Log = Vec::new();
        let t = sim.now() + tsuru_sim::SimDuration::from_nanos(7);
        sim.schedule_event_at(t, Ev::Rec { id: u64::MAX });
        sim.run(&mut log2);
        prop_assert_eq!(log2.len(), 1);
        prop_assert_eq!(sim.pending(), 0);
    }
}
