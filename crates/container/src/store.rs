//! Typed object stores with versioning and a watch log.

use std::collections::BTreeMap;

use crate::meta::Object;

/// What happened to an object (the watch stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WatchEvent {
    /// Object created (key).
    Added(String),
    /// Object updated (key).
    Modified(String),
    /// Object deleted (key).
    Deleted(String),
}

/// A typed store for one resource kind.
#[derive(Debug)]
pub struct Store<T: Object> {
    items: BTreeMap<String, T>,
    next_uid: u64,
    rv: u64,
    mutations: u64,
    log: Vec<WatchEvent>,
}

impl<T: Object> Default for Store<T> {
    fn default() -> Self {
        Store {
            items: BTreeMap::new(),
            next_uid: 1,
            rv: 0,
            mutations: 0,
            log: Vec::new(),
        }
    }
}

impl<T: Object> Store<T> {
    /// An empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Create an object; assigns uid and resource version.
    ///
    /// # Panics
    /// Panics if the key already exists (API conflict is a caller bug in
    /// this deterministic setting; use [`Store::contains`] to guard).
    pub fn create(&mut self, mut obj: T) -> String {
        let key = obj.meta().key();
        assert!(
            !self.items.contains_key(&key),
            "{} {key} already exists",
            T::KIND
        );
        self.rv += 1;
        self.mutations += 1;
        obj.meta_mut().uid = self.next_uid;
        obj.meta_mut().resource_version = self.rv;
        self.next_uid += 1;
        self.log.push(WatchEvent::Added(key.clone()));
        self.items.insert(key.clone(), obj);
        key
    }

    /// Does an object with this key exist?
    pub fn contains(&self, key: &str) -> bool {
        self.items.contains_key(key)
    }

    /// Fetch by key.
    pub fn get(&self, key: &str) -> Option<&T> {
        self.items.get(key)
    }

    /// Update in place through a closure; bumps the resource version and
    /// records a watch event. Returns `false` if the object is missing.
    /// The closure must return `true` if it actually changed the object —
    /// no-op updates do not count as mutations (important for convergence
    /// detection).
    pub fn update(&mut self, key: &str, f: impl FnOnce(&mut T) -> bool) -> bool {
        match self.items.get_mut(key) {
            None => false,
            Some(obj) => {
                if f(obj) {
                    self.rv += 1;
                    self.mutations += 1;
                    obj.meta_mut().resource_version = self.rv;
                    self.log.push(WatchEvent::Modified(key.to_owned()));
                }
                true
            }
        }
    }

    /// Delete by key; returns the object if it existed.
    pub fn delete(&mut self, key: &str) -> Option<T> {
        let obj = self.items.remove(key);
        if obj.is_some() {
            self.rv += 1;
            self.mutations += 1;
            self.log.push(WatchEvent::Deleted(key.to_owned()));
        }
        obj
    }

    /// All objects in key order.
    pub fn list(&self) -> impl Iterator<Item = &T> {
        self.items.values()
    }

    /// Objects in one namespace, in key order.
    pub fn list_namespace<'a>(&'a self, ns: &'a str) -> impl Iterator<Item = &'a T> + 'a {
        self.items
            .values()
            .filter(move |o| o.meta().namespace.as_deref() == Some(ns))
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total writes ever applied (creation + effective updates + deletes).
    pub fn mutations(&self) -> u64 {
        self.mutations
    }

    /// The watch log since the beginning.
    pub fn watch_log(&self) -> &[WatchEvent] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::ObjectMeta;
    use crate::resources::Namespace;

    fn ns(name: &str) -> Namespace {
        Namespace {
            meta: ObjectMeta::cluster(name),
        }
    }

    #[test]
    fn create_get_delete() {
        let mut s: Store<Namespace> = Store::new();
        let key = s.create(ns("shop"));
        assert_eq!(key, "shop");
        assert!(s.contains("shop"));
        assert_eq!(s.get("shop").unwrap().meta.uid, 1);
        assert_eq!(s.get("shop").unwrap().meta.resource_version, 1);
        assert!(s.delete("shop").is_some());
        assert!(s.delete("shop").is_none());
        assert_eq!(s.mutations(), 2);
        assert_eq!(
            s.watch_log(),
            &[
                WatchEvent::Added("shop".into()),
                WatchEvent::Deleted("shop".into())
            ]
        );
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_create_panics() {
        let mut s: Store<Namespace> = Store::new();
        s.create(ns("a"));
        s.create(ns("a"));
    }

    #[test]
    fn effective_and_noop_updates() {
        let mut s: Store<Namespace> = Store::new();
        s.create(ns("a"));
        let before = s.mutations();
        // No-op update: closure reports no change.
        assert!(s.update("a", |_| false));
        assert_eq!(s.mutations(), before);
        // Effective update bumps rv.
        assert!(s.update("a", |n| {
            n.meta.labels.insert("k".into(), "v".into());
            true
        }));
        assert_eq!(s.mutations(), before + 1);
        assert_eq!(s.get("a").unwrap().meta.resource_version, 2);
        // Missing object.
        assert!(!s.update("zzz", |_| true));
    }

    #[test]
    fn namespace_listing() {
        #[derive(Debug, Clone)]
        struct Thing {
            meta: ObjectMeta,
        }
        impl Object for Thing {
            const KIND: &'static str = "Thing";
            fn meta(&self) -> &ObjectMeta {
                &self.meta
            }
            fn meta_mut(&mut self) -> &mut ObjectMeta {
                &mut self.meta
            }
        }
        let mut s: Store<Thing> = Store::new();
        s.create(Thing {
            meta: ObjectMeta::namespaced("a", "x"),
        });
        s.create(Thing {
            meta: ObjectMeta::namespaced("b", "y"),
        });
        s.create(Thing {
            meta: ObjectMeta::namespaced("a", "z"),
        });
        let in_a: Vec<_> = s.list_namespace("a").map(|t| t.meta.name.clone()).collect();
        assert_eq!(in_a, vec!["x", "z"]);
        assert_eq!(s.list().count(), 3);
    }
}
