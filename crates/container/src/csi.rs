//! The container storage interface (CSI) abstraction and the generic PVC
//! provisioner controller.
//!
//! The CSI "standardizes the operations of external storage systems, which
//! vary depending on the vendors" (§II). Here [`CsiDriver`] is that
//! standard surface; the vendor plugin in `tsuru-plugin` implements it
//! against the simulated array. The [`Provisioner`] is the generic
//! controller that turns Pending claims into bound PVs through whatever
//! driver the storage class names.

use std::collections::BTreeMap;

use crate::api::ApiServer;
use crate::meta::ObjectMeta;
use crate::reconcile::Reconciler;
use crate::resources::{ClaimPhase, PersistentVolume, VolumeHandle};

/// Vendor-neutral storage operations (a subset of the CSI controller
/// service, plus the volume-group-snapshot alpha call).
pub trait CsiDriver<C> {
    /// Driver name as referenced by storage classes.
    fn driver_name(&self) -> &str;

    /// Provision a volume.
    fn create_volume(
        &mut self,
        ctx: &mut C,
        name: &str,
        size_blocks: u64,
        parameters: &BTreeMap<String, String>,
    ) -> Result<VolumeHandle, String>;

    /// Delete a provisioned volume.
    fn delete_volume(&mut self, ctx: &mut C, handle: VolumeHandle) -> Result<(), String>;

    /// Take a snapshot of one volume; returns the array snapshot handle.
    fn create_snapshot(
        &mut self,
        ctx: &mut C,
        source: VolumeHandle,
        name: &str,
    ) -> Result<u64, String>;

    /// Take an atomic snapshot of several volumes (the alpha
    /// volume-group-snapshot feature); returns one handle per source.
    fn create_group_snapshot(
        &mut self,
        ctx: &mut C,
        sources: &[VolumeHandle],
        name: &str,
    ) -> Result<Vec<u64>, String>;

    /// Provision a new volume pre-populated from a snapshot (the CSI
    /// volume data-source / restore path). Drivers that cannot restore
    /// report so instead of silently provisioning empty storage.
    fn create_volume_from_snapshot(
        &mut self,
        _ctx: &mut C,
        _snapshot: u64,
        _name: &str,
    ) -> Result<VolumeHandle, String> {
        Err("driver does not support snapshot restore".into())
    }
}

/// The generic dynamic provisioner: binds Pending PVCs whose storage class
/// names this driver.
pub struct Provisioner<D> {
    driver: D,
    /// Provisioning failures (surfaced as events too).
    pub failures: u64,
}

impl<D> Provisioner<D> {
    /// Wrap a driver.
    pub fn new(driver: D) -> Self {
        Provisioner {
            driver,
            failures: 0,
        }
    }

    /// Access the wrapped driver.
    pub fn driver(&self) -> &D {
        &self.driver
    }

    /// Mutable access to the wrapped driver (e.g. snapshot calls by other
    /// controllers sharing the driver; cheap in this single-threaded
    /// setting).
    pub fn driver_mut(&mut self) -> &mut D {
        &mut self.driver
    }
}

impl<C, D: CsiDriver<C>> Reconciler<C> for Provisioner<D> {
    fn name(&self) -> &str {
        "csi-provisioner"
    }

    fn reconcile(&mut self, api: &mut ApiServer, ctx: &mut C) {
        // Collect Pending claims whose class points at this driver.
        let work: Vec<(String, String, u64, BTreeMap<String, String>)> = api
            .pvcs
            .list()
            .filter(|pvc| pvc.phase == ClaimPhase::Pending)
            .filter_map(|pvc| {
                let sc = api.storage_classes.get(&pvc.storage_class)?;
                if sc.provisioner == self.driver.driver_name() {
                    Some((
                        pvc.meta.key(),
                        pvc.meta.name.clone(),
                        pvc.size_blocks,
                        sc.parameters.clone(),
                    ))
                } else {
                    None
                }
            })
            .collect();

        for (pvc_key, pvc_name, size, params) in work {
            let pv_name = format!("pv-{}", pvc_key.replace('/', "-"));
            match self.driver.create_volume(ctx, &pv_name, size, &params) {
                Ok(handle) => {
                    let sc_name = api
                        .pvcs
                        .get(&pvc_key)
                        .map(|p| p.storage_class.clone())
                        .unwrap_or_default();
                    if !api.pvs.contains(&pv_name) {
                        api.pvs.create(PersistentVolume {
                            meta: ObjectMeta::cluster(&pv_name),
                            storage_class: sc_name,
                            size_blocks: size,
                            handle,
                            claim_key: Some(pvc_key.clone()),
                        });
                    }
                    api.pvcs.update(&pvc_key, |pvc| {
                        pvc.phase = ClaimPhase::Bound;
                        pvc.volume_name = Some(pv_name.clone());
                        true
                    });
                    api.record_event(
                        format!("PersistentVolumeClaim/{pvc_key}"),
                        "Provisioned",
                        format!("bound to {pv_name} (array volume {})", handle.volume),
                    );
                }
                Err(why) => {
                    self.failures += 1;
                    api.record_event(
                        format!("PersistentVolumeClaim/{pvc_key}"),
                        "ProvisioningFailed",
                        format!("{pvc_name}: {why}"),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reconcile::ControllerManager;
    use crate::resources::{PersistentVolumeClaim, StorageClass};

    /// A toy in-memory driver.
    #[derive(Default)]
    struct FakeDriver {
        created: Vec<(String, u64)>,
        fail_on: Option<String>,
    }

    impl CsiDriver<()> for FakeDriver {
        fn driver_name(&self) -> &str {
            "fake.csi"
        }
        fn create_volume(
            &mut self,
            _ctx: &mut (),
            name: &str,
            size_blocks: u64,
            _p: &BTreeMap<String, String>,
        ) -> Result<VolumeHandle, String> {
            if self.fail_on.as_deref() == Some(name) {
                return Err("simulated failure".into());
            }
            self.created.push((name.to_owned(), size_blocks));
            Ok(VolumeHandle {
                array: 0,
                volume: self.created.len() as u64,
            })
        }
        fn delete_volume(&mut self, _ctx: &mut (), _h: VolumeHandle) -> Result<(), String> {
            Ok(())
        }
        fn create_snapshot(
            &mut self,
            _ctx: &mut (),
            _s: VolumeHandle,
            _n: &str,
        ) -> Result<u64, String> {
            Ok(1)
        }
        fn create_group_snapshot(
            &mut self,
            _ctx: &mut (),
            s: &[VolumeHandle],
            _n: &str,
        ) -> Result<Vec<u64>, String> {
            Ok(vec![1; s.len()])
        }
    }

    fn setup(api: &mut ApiServer) {
        api.storage_classes.create(StorageClass {
            meta: ObjectMeta::cluster("tsuru-block"),
            provisioner: "fake.csi".into(),
            parameters: BTreeMap::new(),
        });
        api.storage_classes.create(StorageClass {
            meta: ObjectMeta::cluster("other"),
            provisioner: "someone.else".into(),
            parameters: BTreeMap::new(),
        });
    }

    fn pvc(ns: &str, name: &str, class: &str, size: u64) -> PersistentVolumeClaim {
        PersistentVolumeClaim {
            meta: ObjectMeta::namespaced(ns, name),
            storage_class: class.into(),
            size_blocks: size,
            phase: ClaimPhase::Pending,
            volume_name: None,
        }
    }

    #[test]
    fn pending_claims_get_bound() {
        let mut api = ApiServer::new();
        setup(&mut api);
        api.pvcs.create(pvc("shop", "sales-data", "tsuru-block", 100));
        api.pvcs.create(pvc("shop", "stock-data", "tsuru-block", 200));
        api.pvcs.create(pvc("shop", "foreign", "other", 50));
        let mut prov = Provisioner::new(FakeDriver::default());
        let report =
            ControllerManager::run_to_convergence(&mut api, &mut (), &mut [&mut prov], 10);
        assert!(report.converged);
        assert_eq!(api.pvs.len(), 2, "only this driver's claims provisioned");
        let bound = api.pvcs.get("shop/sales-data").unwrap();
        assert_eq!(bound.phase, ClaimPhase::Bound);
        let pv = api.pvs.get(bound.volume_name.as_deref().unwrap()).unwrap();
        assert_eq!(pv.claim_key.as_deref(), Some("shop/sales-data"));
        assert_eq!(pv.size_blocks, 100);
        // Foreign-class claim untouched.
        assert_eq!(api.pvcs.get("shop/foreign").unwrap().phase, ClaimPhase::Pending);
        assert_eq!(prov.driver().created.len(), 2);
    }

    #[test]
    fn provisioning_is_idempotent() {
        let mut api = ApiServer::new();
        setup(&mut api);
        api.pvcs.create(pvc("shop", "a", "tsuru-block", 10));
        let mut prov = Provisioner::new(FakeDriver::default());
        let r1 = ControllerManager::run_to_convergence(&mut api, &mut (), &mut [&mut prov], 10);
        let m1 = api.total_mutations();
        let r2 = ControllerManager::run_to_convergence(&mut api, &mut (), &mut [&mut prov], 10);
        assert!(r1.converged && r2.converged);
        assert_eq!(api.total_mutations(), m1, "second run must be a no-op");
        assert_eq!(prov.driver().created.len(), 1);
    }

    #[test]
    fn failures_are_recorded_and_retried_without_wedging() {
        let mut api = ApiServer::new();
        setup(&mut api);
        api.pvcs.create(pvc("shop", "bad", "tsuru-block", 10));
        let mut prov = Provisioner::new(FakeDriver {
            fail_on: Some("pv-shop-bad".into()),
            ..Default::default()
        });
        let report =
            ControllerManager::run_to_convergence(&mut api, &mut (), &mut [&mut prov], 5);
        // Each round retries and fails: events keep the API mutating, so
        // the run exhausts its budget — but the claim stays Pending and no
        // PV exists.
        assert!(!report.converged);
        assert!(prov.failures >= 1);
        assert_eq!(api.pvcs.get("shop/bad").unwrap().phase, ClaimPhase::Pending);
        assert_eq!(api.pvs.len(), 0);
    }
}
