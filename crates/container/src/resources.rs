//! The resource types of the mini container platform.
//!
//! Core Kubernetes kinds (Namespace, PVC, PV, StorageClass, Pod) plus the
//! storage-integration custom resources the demonstration system relies on:
//! `VolumeReplication` / `ReplicationGroup` (the Replication Plug-in for
//! Containers' CRs) and `VolumeSnapshot` / `VolumeGroupSnapshot` (the CSI
//! snapshot API, including the volume-group-snapshot alpha feature the
//! paper cites).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::meta::{Object, ObjectMeta};

/// Opaque handle to a volume on an external storage array, as recorded by a
/// CSI driver (array id + LDEV number in this reproduction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VolumeHandle {
    /// Array identifier.
    pub array: u32,
    /// Volume identifier within the array.
    pub volume: u64,
}

macro_rules! object_impl {
    ($ty:ident, $kind:literal) => {
        impl Object for $ty {
            const KIND: &'static str = $kind;
            fn meta(&self) -> &ObjectMeta {
                &self.meta
            }
            fn meta_mut(&mut self) -> &mut ObjectMeta {
                &mut self.meta
            }
        }
    };
}

// ----- namespace -------------------------------------------------------------

/// A namespace partitions the application environment (§II of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Namespace {
    /// Metadata; the backup tag lives in `meta.labels`.
    pub meta: ObjectMeta,
}
object_impl!(Namespace, "Namespace");

/// The label key the namespace operator watches.
pub const BACKUP_TAG_KEY: &str = "tsuru.io/backup";
/// The label value that requests consistent replication to the backup site
/// (Fig. 3 of the paper).
pub const BACKUP_TAG_VALUE: &str = "ConsistentCopyToCloud";

// ----- storage class / PVC / PV ----------------------------------------------

/// A storage class names a provisioner (CSI driver) and its parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageClass {
    /// Metadata (cluster-scoped).
    pub meta: ObjectMeta,
    /// CSI driver name, e.g. `block.csi.tsuru.io`.
    pub provisioner: String,
    /// Driver-specific parameters.
    pub parameters: BTreeMap<String, String>,
}
object_impl!(StorageClass, "StorageClass");

/// Lifecycle phase of a claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClaimPhase {
    /// Awaiting provisioning.
    #[default]
    Pending,
    /// Bound to a PersistentVolume.
    Bound,
    /// Released (PV deleted underneath).
    Lost,
}

/// A PersistentVolumeClaim: an application's request for storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistentVolumeClaim {
    /// Metadata (namespaced).
    pub meta: ObjectMeta,
    /// Requested storage class.
    pub storage_class: String,
    /// Requested capacity in blocks.
    pub size_blocks: u64,
    /// Current phase.
    pub phase: ClaimPhase,
    /// Name of the bound PV once provisioned.
    pub volume_name: Option<String>,
}
object_impl!(PersistentVolumeClaim, "PersistentVolumeClaim");

/// A PersistentVolume: provisioned storage backed by an array volume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistentVolume {
    /// Metadata (cluster-scoped).
    pub meta: ObjectMeta,
    /// Storage class it was provisioned for.
    pub storage_class: String,
    /// Capacity in blocks.
    pub size_blocks: u64,
    /// Backing array volume.
    pub handle: VolumeHandle,
    /// `namespace/name` of the claim this PV is bound to.
    pub claim_key: Option<String>,
}
object_impl!(PersistentVolume, "PersistentVolume");

// ----- pod ---------------------------------------------------------------------

/// A pod (minimal: just enough to tie an application to its claims).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pod {
    /// Metadata (namespaced).
    pub meta: ObjectMeta,
    /// Names of PVCs this pod mounts (same namespace).
    pub pvc_names: Vec<String>,
    /// Is the pod running?
    pub running: bool,
}
object_impl!(Pod, "Pod");

// ----- snapshots -----------------------------------------------------------------

/// A CSI volume snapshot request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VolumeSnapshot {
    /// Metadata (namespaced).
    pub meta: ObjectMeta,
    /// Source claim (same namespace).
    pub source_pvc: String,
    /// Ready once the array snapshot exists.
    pub ready: bool,
    /// Array snapshot handle once taken.
    pub snapshot_handle: Option<u64>,
}
object_impl!(VolumeSnapshot, "VolumeSnapshot");

/// The volume-group-snapshot alpha API (Kubernetes 1.27): one atomic,
/// crash-consistent snapshot across several claims.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VolumeGroupSnapshot {
    /// Metadata (namespaced).
    pub meta: ObjectMeta,
    /// Label selector choosing the member claims.
    pub selector: BTreeMap<String, String>,
    /// Ready once all array snapshots exist.
    pub ready: bool,
    /// `(pvc name, array snapshot handle)` per member, set when ready.
    pub snapshot_handles: Vec<(String, u64)>,
}
object_impl!(VolumeGroupSnapshot, "VolumeGroupSnapshot");

// ----- replication ----------------------------------------------------------------

/// Replication mode requested for a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplicationMode {
    /// Asynchronous data copy through journals (the paper's ADC).
    #[default]
    Async,
    /// Synchronous copy (the latency-bound baseline).
    Sync,
}

/// State of a replication object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplicationState {
    /// Not yet configured on the array.
    #[default]
    Unknown,
    /// Pair/group configured and replicating.
    Replicating,
    /// Suspended or failed over.
    Suspended,
    /// Suspended, with the replication supervisor actively driving a
    /// recovery attempt (backoff or resync in flight).
    Recovering,
    /// Parked by the supervisor's circuit breaker after repeated failed
    /// recovery attempts; operator intervention required.
    Parked,
}

/// A ReplicationGroup custom resource: requests a consistency group on the
/// external storage for a set of claims (created by the namespace operator,
/// reconciled by the Replication Plug-in for Containers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicationGroup {
    /// Metadata (namespaced).
    pub meta: ObjectMeta,
    /// ADC or SDC.
    pub mode: ReplicationMode,
    /// Whether members must share one consistency group. `false` gives the
    /// paper's "naive" per-volume replication (for the ablation).
    pub consistency_group: bool,
    /// Member claims (same namespace), in creation order.
    pub member_pvcs: Vec<String>,
    /// Reconciled state.
    pub state: ReplicationState,
    /// Array group handles once configured (one when
    /// `consistency_group`, one per member otherwise).
    pub group_handles: Vec<u32>,
}
object_impl!(ReplicationGroup, "ReplicationGroup");

/// A VolumeReplication custom resource: one claim's replication
/// relationship (created per member by the namespace operator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VolumeReplication {
    /// Metadata (namespaced).
    pub meta: ObjectMeta,
    /// Source claim.
    pub source_pvc: String,
    /// Owning ReplicationGroup.
    pub group_name: String,
    /// Reconciled state.
    pub state: ReplicationState,
    /// Array pair handle once configured.
    pub pair_handle: Option<u32>,
}
object_impl!(VolumeReplication, "VolumeReplication");

// ----- events ------------------------------------------------------------------------

/// An operator-visible event (rendered on the web console in the demo).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Metadata.
    pub meta: ObjectMeta,
    /// Machine-readable reason.
    pub reason: String,
    /// Human-readable message.
    pub message: String,
    /// `Kind/namespace/name` of the involved object.
    pub involved: String,
}
object_impl!(Event, "Event");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct() {
        assert_eq!(Namespace::KIND, "Namespace");
        assert_eq!(PersistentVolumeClaim::KIND, "PersistentVolumeClaim");
        assert_eq!(VolumeGroupSnapshot::KIND, "VolumeGroupSnapshot");
        assert_eq!(ReplicationGroup::KIND, "ReplicationGroup");
    }

    #[test]
    fn object_trait_provides_meta_access() {
        let mut ns = Namespace {
            meta: ObjectMeta::cluster("shop"),
        };
        assert_eq!(ns.meta().name, "shop");
        ns.meta_mut()
            .labels
            .insert(BACKUP_TAG_KEY.into(), BACKUP_TAG_VALUE.into());
        assert_eq!(
            ns.meta.labels.get(BACKUP_TAG_KEY).map(String::as_str),
            Some(BACKUP_TAG_VALUE)
        );
    }

    #[test]
    fn defaults() {
        assert_eq!(ClaimPhase::default(), ClaimPhase::Pending);
        assert_eq!(ReplicationMode::default(), ReplicationMode::Async);
        assert_eq!(ReplicationState::default(), ReplicationState::Unknown);
    }
}
