//! The controller runtime: level-triggered reconciliation to a fixed point.
//!
//! Controllers (provisioners, plugins, the namespace operator) implement
//! [`Reconciler`]; the [`ControllerManager`] runs them in rounds until a
//! full round produces no API mutation. This mirrors how Kubernetes
//! controllers converge, and the returned [`ConvergenceReport`] is the raw
//! material for experiment E5 (operator automation cost).

use crate::api::ApiServer;

/// A level-triggered controller over the API state plus an external
/// context `C` (the storage world, for CSI drivers and plugins).
pub trait Reconciler<C> {
    /// Controller name (diagnostics).
    fn name(&self) -> &str;
    /// Observe the API state and drive it (and the context) toward the
    /// declared intent. Must be idempotent.
    fn reconcile(&mut self, api: &mut ApiServer, ctx: &mut C);
}

/// What a convergence run did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvergenceReport {
    /// Full rounds executed (including the final quiet round).
    pub rounds: u32,
    /// Individual `reconcile` invocations.
    pub reconcile_calls: u32,
    /// API mutations performed during the run.
    pub mutations: u64,
    /// Whether a fixed point was reached within the round budget.
    pub converged: bool,
}

/// Runs a set of controllers to a fixed point.
pub struct ControllerManager;

impl ControllerManager {
    /// Run every controller once per round until a whole round leaves the
    /// API untouched, or `max_rounds` is exhausted.
    pub fn run_to_convergence<C>(
        api: &mut ApiServer,
        ctx: &mut C,
        controllers: &mut [&mut dyn Reconciler<C>],
        max_rounds: u32,
    ) -> ConvergenceReport {
        let start_mutations = api.total_mutations();
        let mut rounds = 0;
        let mut calls = 0;
        let mut converged = false;
        while rounds < max_rounds {
            rounds += 1;
            let before = api.total_mutations();
            for c in controllers.iter_mut() {
                c.reconcile(api, ctx);
                calls += 1;
            }
            if api.total_mutations() == before {
                converged = true;
                break;
            }
        }
        ConvergenceReport {
            rounds,
            reconcile_calls: calls,
            mutations: api.total_mutations() - start_mutations,
            converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::ObjectMeta;
    use crate::resources::Namespace;

    /// Creates namespaces `gen-0..gen-N` one per round (a convergent chain).
    struct ChainController {
        target: usize,
    }

    impl Reconciler<()> for ChainController {
        fn name(&self) -> &str {
            "chain"
        }
        fn reconcile(&mut self, api: &mut ApiServer, _ctx: &mut ()) {
            let n = api.namespaces.len();
            if n < self.target {
                api.namespaces.create(Namespace {
                    meta: ObjectMeta::cluster(format!("gen-{n}")),
                });
            }
        }
    }

    /// A controller that never settles.
    struct FlappingController;

    impl Reconciler<()> for FlappingController {
        fn name(&self) -> &str {
            "flap"
        }
        fn reconcile(&mut self, api: &mut ApiServer, _ctx: &mut ()) {
            let key = "flap";
            if api.namespaces.contains(key) {
                api.namespaces.delete(key);
            } else {
                api.namespaces.create(Namespace {
                    meta: ObjectMeta::cluster(key),
                });
            }
        }
    }

    #[test]
    fn chain_converges_in_target_plus_one_rounds() {
        let mut api = ApiServer::new();
        let mut c = ChainController { target: 5 };
        let report = ControllerManager::run_to_convergence(&mut api, &mut (), &mut [&mut c], 100);
        assert!(report.converged);
        assert_eq!(api.namespaces.len(), 5);
        assert_eq!(report.rounds, 6); // 5 productive + 1 quiet
        assert_eq!(report.mutations, 5);
    }

    #[test]
    fn flapping_controller_hits_round_budget() {
        let mut api = ApiServer::new();
        let mut c = FlappingController;
        let report = ControllerManager::run_to_convergence(&mut api, &mut (), &mut [&mut c], 10);
        assert!(!report.converged);
        assert_eq!(report.rounds, 10);
    }

    #[test]
    fn multiple_controllers_interleave() {
        let mut api = ApiServer::new();
        let mut a = ChainController { target: 3 };
        let mut b = ChainController { target: 6 };
        let report = ControllerManager::run_to_convergence(
            &mut api,
            &mut (),
            &mut [&mut a, &mut b],
            100,
        );
        assert!(report.converged);
        assert_eq!(api.namespaces.len(), 6);
    }

    #[test]
    fn empty_controller_set_converges_immediately() {
        let mut api = ApiServer::new();
        let report =
            ControllerManager::run_to_convergence::<()>(&mut api, &mut (), &mut [], 10);
        assert!(report.converged);
        assert_eq!(report.rounds, 1);
        assert_eq!(report.reconcile_calls, 0);
    }
}
