//! Object metadata, mirroring the Kubernetes object model.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Metadata common to every API object.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectMeta {
    /// Object name, unique within (kind, namespace).
    pub name: String,
    /// Namespace, `None` for cluster-scoped objects.
    pub namespace: Option<String>,
    /// Unique id assigned at creation.
    pub uid: u64,
    /// Monotonically increasing per-store version, bumped on every write.
    pub resource_version: u64,
    /// Labels (used by selectors and by the namespace operator's backup
    /// tag).
    pub labels: BTreeMap<String, String>,
    /// Free-form annotations (used for operator status notes).
    pub annotations: BTreeMap<String, String>,
}

impl ObjectMeta {
    /// Metadata for a namespaced object.
    pub fn namespaced(namespace: impl Into<String>, name: impl Into<String>) -> Self {
        ObjectMeta {
            name: name.into(),
            namespace: Some(namespace.into()),
            ..Default::default()
        }
    }

    /// Metadata for a cluster-scoped object.
    pub fn cluster(name: impl Into<String>) -> Self {
        ObjectMeta {
            name: name.into(),
            namespace: None,
            ..Default::default()
        }
    }

    /// Attach a label (builder style).
    pub fn with_label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.labels.insert(key.into(), value.into());
        self
    }

    /// The store key: `namespace/name` or `name`.
    pub fn key(&self) -> String {
        match &self.namespace {
            Some(ns) => format!("{ns}/{}", self.name),
            None => self.name.clone(),
        }
    }

    /// Does this object's label set satisfy `selector` (every selector
    /// entry must match exactly)?
    pub fn matches_labels(&self, selector: &BTreeMap<String, String>) -> bool {
        selector
            .iter()
            .all(|(k, v)| self.labels.get(k) == Some(v))
    }
}

/// Every API object exposes its metadata and a kind string.
pub trait Object {
    /// Kind name, e.g. `PersistentVolumeClaim`.
    const KIND: &'static str;
    /// Borrow metadata.
    fn meta(&self) -> &ObjectMeta;
    /// Mutably borrow metadata.
    fn meta_mut(&mut self) -> &mut ObjectMeta;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys() {
        assert_eq!(ObjectMeta::namespaced("shop", "db").key(), "shop/db");
        assert_eq!(ObjectMeta::cluster("pv-1").key(), "pv-1");
    }

    #[test]
    fn label_matching() {
        let meta = ObjectMeta::cluster("x")
            .with_label("app", "shop")
            .with_label("tier", "db");
        let mut sel = BTreeMap::new();
        assert!(meta.matches_labels(&sel)); // empty selector matches all
        sel.insert("app".into(), "shop".into());
        assert!(meta.matches_labels(&sel));
        sel.insert("tier".into(), "web".into());
        assert!(!meta.matches_labels(&sel));
        sel.insert("tier".into(), "db".into());
        assert!(meta.matches_labels(&sel));
        sel.insert("missing".into(), "x".into());
        assert!(!meta.matches_labels(&sel));
    }
}
