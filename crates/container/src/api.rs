//! The API server: one typed store per resource kind.

use crate::meta::ObjectMeta;
use crate::resources::{
    Event, Namespace, PersistentVolume, PersistentVolumeClaim, Pod, ReplicationGroup,
    StorageClass, VolumeGroupSnapshot, VolumeReplication, VolumeSnapshot,
};
use crate::store::Store;

/// The declarative state of one container platform (one per site).
#[derive(Debug, Default)]
pub struct ApiServer {
    /// Namespaces.
    pub namespaces: Store<Namespace>,
    /// Storage classes.
    pub storage_classes: Store<StorageClass>,
    /// Claims.
    pub pvcs: Store<PersistentVolumeClaim>,
    /// Volumes.
    pub pvs: Store<PersistentVolume>,
    /// Pods.
    pub pods: Store<Pod>,
    /// Per-volume snapshots.
    pub snapshots: Store<VolumeSnapshot>,
    /// Group snapshots.
    pub group_snapshots: Store<VolumeGroupSnapshot>,
    /// Per-volume replication CRs.
    pub replications: Store<VolumeReplication>,
    /// Replication-group CRs.
    pub replication_groups: Store<ReplicationGroup>,
    /// Operator events (console feed).
    pub events: Store<Event>,
    next_event: u64,
}

impl ApiServer {
    /// An empty API server.
    pub fn new() -> Self {
        ApiServer::default()
    }

    /// Sum of mutations across every store — the convergence signal for
    /// the controller manager.
    pub fn total_mutations(&self) -> u64 {
        self.namespaces.mutations()
            + self.storage_classes.mutations()
            + self.pvcs.mutations()
            + self.pvs.mutations()
            + self.pods.mutations()
            + self.snapshots.mutations()
            + self.group_snapshots.mutations()
            + self.replications.mutations()
            + self.replication_groups.mutations()
            + self.events.mutations()
    }

    /// Record an operator event (shown on the demo console).
    pub fn record_event(
        &mut self,
        involved: impl Into<String>,
        reason: impl Into<String>,
        message: impl Into<String>,
    ) {
        let id = self.next_event;
        self.next_event += 1;
        self.events.create(Event {
            meta: ObjectMeta::cluster(format!("event-{id}")),
            reason: reason.into(),
            message: message.into(),
            involved: involved.into(),
        });
    }

    /// Render the most recent events, newest last (console tail).
    pub fn event_tail(&self, n: usize) -> Vec<String> {
        let mut all: Vec<_> = self.events.list().collect();
        all.sort_by_key(|e| e.meta.uid);
        all.iter()
            .rev()
            .take(n)
            .rev()
            .map(|e| format!("[{}] {}: {}", e.reason, e.involved, e.message))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutations_aggregate_across_stores() {
        let mut api = ApiServer::new();
        assert_eq!(api.total_mutations(), 0);
        api.namespaces.create(Namespace {
            meta: ObjectMeta::cluster("a"),
        });
        api.record_event("Namespace/a", "Created", "namespace created");
        assert_eq!(api.total_mutations(), 2);
    }

    #[test]
    fn event_tail_orders_and_limits() {
        let mut api = ApiServer::new();
        for i in 0..5 {
            api.record_event("X", "R", format!("m{i}"));
        }
        let tail = api.event_tail(2);
        assert_eq!(tail.len(), 2);
        assert!(tail[0].contains("m3"));
        assert!(tail[1].contains("m4"));
    }
}
