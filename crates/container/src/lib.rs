//! # tsuru-container — a miniature declarative container platform
//!
//! The stand-in for the paper's OpenShift 4.13 clusters: a typed,
//! versioned object store ([`ApiServer`]), the Kubernetes resource kinds
//! the demonstration needs (namespaces, claims, volumes, pods, snapshot and
//! replication custom resources), a level-triggered controller runtime
//! ([`ControllerManager`]), and the CSI abstraction ([`CsiDriver`]) with a
//! generic dynamic provisioner.
//!
//! Vendor plugins (`tsuru-plugin`) and the namespace operator
//! (`tsuru-nso`) are controllers over this platform, exactly as the
//! paper's Storage/Replication Plug-in for Containers and operator-sdk
//! operator are controllers over OpenShift.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
mod csi;
mod meta;
mod reconcile;
mod resources;
mod store;

pub use api::ApiServer;
pub use csi::{CsiDriver, Provisioner};
pub use meta::{Object, ObjectMeta};
pub use reconcile::{ControllerManager, ConvergenceReport, Reconciler};
pub use resources::{
    ClaimPhase, Event, Namespace, PersistentVolume, PersistentVolumeClaim, Pod,
    ReplicationGroup, ReplicationMode, ReplicationState, StorageClass, VolumeGroupSnapshot,
    VolumeHandle, VolumeReplication, VolumeSnapshot, BACKUP_TAG_KEY, BACKUP_TAG_VALUE,
};
pub use store::{Store, WatchEvent};
