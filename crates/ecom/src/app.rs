//! Application state: two databases, metrics, setup helpers.

use tsuru_minidb::{DbConfig, DbVol, IoPlan, MiniDb};
use tsuru_sim::{Histogram, SimTime};
use tsuru_storage::{StorageWorld, VolRef};

use crate::append::AppendState;
use crate::bank::BankState;
use crate::model::{StockRow, STOCK_TABLE};
use crate::workload::WorkloadGen;

/// One database instance and the volumes backing it.
#[derive(Debug)]
pub struct DbInstance {
    /// The engine.
    pub db: MiniDb,
    /// The WAL volume.
    pub wal_vol: VolRef,
    /// The data volume.
    pub data_vol: VolRef,
}

impl DbInstance {
    /// Map a database-relative I/O target to the backing array volume.
    pub fn volref(&self, vol: DbVol) -> VolRef {
        match vol {
            DbVol::Wal => self.wal_vol,
            DbVol::Data => self.data_vol,
        }
    }
}

/// Runtime metrics of the transactional application.
#[derive(Debug, Default)]
pub struct EcomMetrics {
    /// End-to-end order-transaction latency (ns).
    pub txn_latency: Histogram,
    /// Orders fully committed (stock + sales durable).
    pub committed_orders: u64,
    /// Host writes that failed (site disaster observed by the app).
    pub failed_writes: u64,
    /// Degraded (suspended-replication) acknowledgements observed.
    pub degraded_acks: u64,
    /// `(order id, commit-ack instant)` log — the oracle for business-level
    /// RPO (which committed orders survived at the backup).
    pub committed_log: Vec<(u64, SimTime)>,
}

/// The full application state embedded in the simulation world.
#[derive(Debug)]
pub struct EcomState {
    /// The sales (orders) database.
    pub sales: DbInstance,
    /// The stock (inventory) database.
    pub stock: DbInstance,
    /// Order generator.
    pub gen: WorkloadGen,
    /// Metrics.
    pub metrics: EcomMetrics,
    /// Set on site failure (clients park).
    pub stopped: bool,
    /// Optional cap on generated orders (experiments with a fixed count).
    pub stop_after_orders: Option<u64>,
    /// Present when the bank-transfer workload drives this state instead
    /// of the order workload (see [`crate::bank`]).
    pub bank: Option<BankState>,
    /// Present when the append-list workload drives this state instead
    /// of the order workload (see [`crate::append`]).
    pub append: Option<AppendState>,
}

/// Access to the application state from an arbitrary simulation world.
pub trait HasEcom {
    /// Borrow the application.
    fn ecom(&self) -> &EcomState;
    /// Mutably borrow the application.
    fn ecom_mut(&mut self) -> &mut EcomState;
}

/// Apply an [`IoPlan`] to volumes instantly, bypassing the data path —
/// setup only (database formatting and seeding before replication starts).
pub fn apply_plan_direct(st: &mut StorageWorld, plan: &IoPlan, wal: VolRef, data: VolRef) {
    for phase in &plan.phases {
        for io in phase {
            let vol = match io.vol {
                DbVol::Wal => wal,
                DbVol::Data => data,
            };
            st.write_direct(vol, io.lba, &io.data);
        }
    }
}

/// Create and format a database onto the given volumes (setup time).
pub fn install_db(
    st: &mut StorageWorld,
    name: &str,
    wal_vol: VolRef,
    data_vol: VolRef,
    config: DbConfig,
) -> DbInstance {
    let (db, plan) = MiniDb::create(name, config);
    apply_plan_direct(st, &plan, wal_vol, data_vol);
    DbInstance {
        db,
        wal_vol,
        data_vol,
    }
}

/// Seed the stock catalogue with `items` rows of `initial_stock` units
/// (setup time; written directly).
pub fn seed_stock(st: &mut StorageWorld, stock: &mut DbInstance, items: usize, initial: u64) {
    let tx = stock.db.begin();
    for item in 0..items as u64 {
        stock
            .db
            .put(tx, STOCK_TABLE, item, &StockRow { quantity: initial }.encode());
    }
    let plan = stock.db.commit(tx);
    apply_plan_direct(st, &plan, stock.wal_vol, stock.data_vol);
    // Checkpoint so the seeded catalogue is in the tree image, not a giant
    // WAL tail.
    let plan = stock.db.checkpoint();
    apply_plan_direct(st, &plan, stock.wal_vol, stock.data_vol);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadConfig;
    use tsuru_minidb::TableId;
    use tsuru_sim::DetRng;
    use tsuru_storage::{ArrayPerf, EngineConfig, VolumeView};

    #[test]
    fn install_and_seed_then_recover_from_volumes() {
        let mut st = StorageWorld::new(5, EngineConfig::default());
        let a = st.add_array("m", ArrayPerf::default());
        let wal = st.create_volume(a, "stock-wal", 256);
        let data = st.create_volume(a, "stock-data", 2048);
        let mut inst = install_db(
            &mut st,
            "stock",
            wal,
            data,
            DbConfig {
                data_blocks: 2048,
                wal_blocks: 256,
                checkpoint_threshold: 0.8,
            },
        );
        seed_stock(&mut st, &mut inst, 50, 1000);
        // Recover straight from the volumes.
        let array = st.array(a);
        let wal_dev = VolumeView::new(array, wal.volume);
        let data_dev = VolumeView::new(array, data.volume);
        let (rec, _) =
            MiniDb::recover("r", &wal_dev, &data_dev, inst.db.config().clone()).unwrap();
        assert_eq!(rec.scan_table(TableId(1)).len(), 50);
        let row = StockRow::decode(&rec.get_committed(TableId(1), 7).unwrap()).unwrap();
        assert_eq!(row.quantity, 1000);
    }

    #[test]
    fn ecom_state_wiring() {
        let mut st = StorageWorld::new(5, EngineConfig::default());
        let a = st.add_array("m", ArrayPerf::default());
        let sw = st.create_volume(a, "sw", 64);
        let sd = st.create_volume(a, "sd", 512);
        let tw = st.create_volume(a, "tw", 64);
        let td = st.create_volume(a, "td", 512);
        let cfg = DbConfig {
            data_blocks: 512,
            wal_blocks: 64,
            checkpoint_threshold: 0.8,
        };
        let sales = install_db(&mut st, "sales", sw, sd, cfg.clone());
        let stock = install_db(&mut st, "stock", tw, td, cfg);
        let state = EcomState {
            sales,
            stock,
            gen: WorkloadGen::new(WorkloadConfig::default(), DetRng::new(1)),
            metrics: EcomMetrics::default(),
            stopped: false,
            stop_after_orders: None,
            bank: None,
            append: None,
        };
        assert_eq!(state.sales.volref(DbVol::Wal), sw);
        assert_eq!(state.sales.volref(DbVol::Data), sd);
        assert_eq!(state.stock.volref(DbVol::Data), td);
    }
}
