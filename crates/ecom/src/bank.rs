//! The bank-transfer workload: money moves between accounts, the total
//! never changes.
//!
//! Accounts reuse the stock catalogue — each item row *is* an account,
//! its quantity the balance, seeded by [`crate::seed_stock`] — so the
//! invariant total is `items × initial_stock`. Closed-loop clients move
//! random amounts between random account pairs in single stock-database
//! transactions (read both balances, write both), and periodically read
//! the whole table as one [`OpData::ReadBalances`] observation. Because
//! every transfer is atomic, *any* write-order-faithful image of the
//! database conserves the total — which is exactly what the history
//! checker verifies across failover and failback.

use tsuru_history::{space, KeyVer, OpData, Site, TxnOps};
use tsuru_sim::{DetRng, Sim, SimDuration};
use tsuru_storage::HasStorage;

use crate::app::HasEcom;
use crate::driver::{drive_plan, Which};
use crate::event::{EcomEvents, EcomOp};
use crate::model::{StockRow, STOCK_TABLE};

/// Largest single transfer (before clamping to the source balance).
const MAX_AMOUNT: u64 = 10;

/// Mutable state of the bank-transfer workload.
#[derive(Debug)]
pub struct BankState {
    rng: DetRng,
    /// Transfers fully committed (storage-acked).
    pub committed: u64,
    /// Every `read_every`-th client op is a balance read.
    read_every: u64,
    ops_started: u64,
}

impl BankState {
    /// A new workload state; `rng` must come from a dedicated stream of
    /// the trial seed.
    pub fn new(rng: DetRng) -> Self {
        BankState {
            rng,
            committed: 0,
            read_every: 8,
            ops_started: 0,
        }
    }
}

/// Start the closed-loop bank clients (staggered like the order
/// clients). The state's [`crate::EcomState::bank`] must be `Some`.
pub fn start_bank_clients<S, E>(state: &mut S, sim: &mut Sim<S, E>)
where
    S: HasStorage + HasEcom + 'static,
    E: EcomEvents<S>,
{
    assert!(
        state.ecom().bank.is_some(),
        "install BankState before starting bank clients"
    );
    let n = state.ecom().gen.config.clients as u32;
    for client in 0..n {
        sim.schedule_event_in(
            SimDuration::from_micros(client as u64 * 13),
            E::ecom(EcomOp::BankThink { client }),
        );
    }
}

/// Execute one bank operation for `client` (a transfer, or every
/// `read_every`-th op a full balance read), then reschedule.
pub fn bank_txn<S, E>(state: &mut S, sim: &mut Sim<S, E>, client: u32)
where
    S: HasStorage + HasEcom + 'static,
    E: EcomEvents<S>,
{
    if state.ecom().stopped {
        return;
    }
    let now = sim.now();
    let hist = state.storage().history.clone();
    let accounts = state.ecom().gen.config.items as u64;

    let (is_read, from, to, want) = {
        let bank = state
            .ecom_mut()
            .bank
            .as_mut()
            .expect("invariant: bank events are only scheduled once BankState is installed");
        let is_read = bank.ops_started % bank.read_every == bank.read_every - 1;
        bank.ops_started += 1;
        let from = bank.rng.gen_range(accounts);
        let mut to = bank.rng.gen_range(accounts - 1);
        if to >= from {
            to += 1;
        }
        let want = 1 + bank.rng.gen_range(MAX_AMOUNT);
        (is_read, from, to, want)
    };

    if is_read {
        // A read is served synchronously from the committed in-memory
        // state — no storage I/O, no latency, like any primary read.
        let op = hist.invoke(client, now, OpData::ReadBalances { site: Site::Primary });
        let (count, total) = balances(state);
        hist.ok(
            client,
            op,
            now,
            OpData::Balances {
                accounts: count,
                total,
            },
        );
        let think = state.ecom_mut().gen.think_time();
        sim.schedule_event_in(think, E::ecom(EcomOp::BankThink { client }));
        return;
    }

    // Transfer: one atomic stock-database transaction over both rows,
    // clamped so balances never go negative.
    let balance = |s: &S, key: u64| -> u64 {
        s.ecom()
            .stock
            .db
            .get_committed(STOCK_TABLE, key)
            .and_then(|b| StockRow::decode(&b))
            .map_or(0, |r| r.quantity)
    };
    let amount = want.min(balance(state, from));
    let op = hist.invoke(client, now, OpData::Transfer { from, to, amount });
    let mut txn = TxnOps::default();
    if hist.is_enabled() {
        let endpoints = [from, to];
        for key in endpoints {
            txn.reads.push(KeyVer {
                space: space::ACCOUNTS,
                key,
                version: hist.read_version(space::ACCOUNTS, key),
            });
        }
    }
    let plan = {
        let from_balance = balance(state, from);
        let to_balance = balance(state, to);
        let e = state.ecom_mut();
        let tx = e.stock.db.begin();
        e.stock.db.put(
            tx,
            STOCK_TABLE,
            from,
            &StockRow {
                quantity: from_balance - amount,
            }
            .encode(),
        );
        e.stock.db.put(
            tx,
            STOCK_TABLE,
            to,
            &StockRow {
                quantity: to_balance + amount,
            }
            .encode(),
        );
        e.stock.db.commit(tx)
    };
    if hist.is_enabled() {
        let endpoints = [from, to];
        for key in endpoints {
            txn.writes.push(KeyVer {
                space: space::ACCOUNTS,
                key,
                version: hist.install_version(space::ACCOUNTS, key),
            });
        }
    }
    drive_plan(state, sim, Which::Stock, plan, move |s, sim, ok| {
        if !ok {
            // Site disaster: the op stays pending (indeterminate).
            s.ecom_mut().stopped = true;
            return;
        }
        hist.ok(client, op, sim.now(), OpData::Txn(txn));
        let e = s.ecom_mut();
        e.bank
            .as_mut()
            .expect("invariant: bank events are only scheduled once BankState is installed")
            .committed += 1;
        let think = e.gen.think_time();
        sim.schedule_event_in(think, E::ecom(EcomOp::BankThink { client }));
    });
}

/// Count and sum every committed account balance.
fn balances<S: HasStorage + HasEcom>(state: &S) -> (u64, u64) {
    let rows = state.ecom().stock.db.scan_table(STOCK_TABLE);
    let total = rows
        .iter()
        .filter_map(|(_, b)| StockRow::decode(b))
        .map(|r| r.quantity)
        .sum();
    (rows.len() as u64, total)
}
