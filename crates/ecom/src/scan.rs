//! Image-scan observations: read a database (live or recovered from a
//! backup image) and record what a client would see into a history.
//!
//! These helpers work on plain [`MiniDb`] handles so the same code
//! observes the live primary state, a mid-run recovered backup image,
//! and the post-drain backup image — only the [`Site`] tag differs.
//! They are the "long analytics scan" of the paper's use case D3,
//! promoted to a first-class history participant.

use tsuru_history::{OpData, Recorder, Site};
use tsuru_minidb::MiniDb;
use tsuru_sim::SimTime;

use crate::append::LIST_KEYS;
use crate::model::{decode_list, OrderRow, StockRow, LISTS_TABLE, ORDERS_TABLE, STOCK_TABLE};

/// Record a full shop observation: visible orders plus per-item stock
/// decrements (`initial_stock` − observed quantity). One op.
pub fn record_shop_scan(
    hist: &Recorder,
    process: u32,
    t: SimTime,
    site: Site,
    sales: &MiniDb,
    stock: &MiniDb,
    initial_stock: u64,
) {
    if !hist.is_enabled() {
        return;
    }
    let op = hist.invoke(process, t, OpData::ReadShop { site });
    let orders: Vec<u64> = sales
        .scan_table(ORDERS_TABLE)
        .iter()
        .filter(|(_, b)| OrderRow::decode(b).is_some())
        .map(|(id, _)| *id)
        .collect();
    let deltas: Vec<(u64, u64)> = stock
        .scan_table(STOCK_TABLE)
        .iter()
        .filter_map(|(item, b)| {
            let row = StockRow::decode(b)?;
            let sold = initial_stock.saturating_sub(row.quantity);
            (sold > 0).then_some((*item, sold))
        })
        .collect();
    hist.ok(process, op, t, OpData::Shop { orders, deltas });
}

/// Record a full balance observation of the accounts table. One op.
pub fn record_bank_scan(hist: &Recorder, process: u32, t: SimTime, site: Site, stock: &MiniDb) {
    if !hist.is_enabled() {
        return;
    }
    let op = hist.invoke(process, t, OpData::ReadBalances { site });
    let rows = stock.scan_table(STOCK_TABLE);
    let total = rows
        .iter()
        .filter_map(|(_, b)| StockRow::decode(b))
        .map(|r| r.quantity)
        .sum();
    hist.ok(
        process,
        op,
        t,
        OpData::Balances {
            accounts: rows.len() as u64,
            total,
        },
    );
}

/// Record every append list in the image, one op per key (absent rows
/// read as the empty list).
pub fn record_list_scan(hist: &Recorder, process: u32, t: SimTime, site: Site, sales: &MiniDb) {
    if !hist.is_enabled() {
        return;
    }
    for key in 0..LIST_KEYS {
        let op = hist.invoke(process, t, OpData::ReadList { key, site });
        let values = sales
            .get_committed(LISTS_TABLE, key)
            .map(|b| decode_list(&b))
            .unwrap_or_default();
        hist.ok(process, op, t, OpData::List { key, values });
    }
}
