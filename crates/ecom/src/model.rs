//! Row formats for the e-commerce schema.
//!
//! The paper's business process keeps a *stock* database (inventory) and a
//! *sales* database (orders) on separate database instances (§I, §II).

use tsuru_minidb::TableId;

/// The items table in the stock database.
pub const STOCK_TABLE: TableId = TableId(1);
/// The orders table in the sales database.
pub const ORDERS_TABLE: TableId = TableId(1);

/// One inventory row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StockRow {
    /// Units on hand.
    pub quantity: u64,
}

impl StockRow {
    /// Serialize (8 bytes LE).
    pub fn encode(&self) -> Vec<u8> {
        self.quantity.to_le_bytes().to_vec()
    }

    /// Parse; `None` on malformed input.
    pub fn decode(buf: &[u8]) -> Option<StockRow> {
        Some(StockRow {
            quantity: u64::from_le_bytes(buf.get(0..8)?.try_into().ok()?),
        })
    }
}

/// One order row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderRow {
    /// Item purchased.
    pub item: u64,
    /// Units purchased.
    pub quantity: u32,
    /// Client that placed the order.
    pub client: u32,
}

impl OrderRow {
    /// Serialize (16 bytes LE).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&self.item.to_le_bytes());
        out.extend_from_slice(&self.quantity.to_le_bytes());
        out.extend_from_slice(&self.client.to_le_bytes());
        out
    }

    /// Parse; `None` on malformed input.
    pub fn decode(buf: &[u8]) -> Option<OrderRow> {
        Some(OrderRow {
            item: u64::from_le_bytes(buf.get(0..8)?.try_into().ok()?),
            quantity: u32::from_le_bytes(buf.get(8..12)?.try_into().ok()?),
            client: u32::from_le_bytes(buf.get(12..16)?.try_into().ok()?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_roundtrip() {
        let r = StockRow { quantity: 42 };
        assert_eq!(StockRow::decode(&r.encode()), Some(r));
        assert_eq!(StockRow::decode(b"abc"), None);
    }

    #[test]
    fn order_roundtrip() {
        let r = OrderRow {
            item: 7,
            quantity: 3,
            client: 12,
        };
        assert_eq!(OrderRow::decode(&r.encode()), Some(r));
        assert_eq!(OrderRow::decode(&[0; 5]), None);
    }
}
