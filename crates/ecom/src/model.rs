//! Row formats for the e-commerce schema.
//!
//! The paper's business process keeps a *stock* database (inventory) and a
//! *sales* database (orders) on separate database instances (§I, §II).

use tsuru_minidb::TableId;

/// The items table in the stock database.
pub const STOCK_TABLE: TableId = TableId(1);
/// The orders table in the sales database.
pub const ORDERS_TABLE: TableId = TableId(1);
/// The per-key append lists of the append-list workload, kept in the
/// sales database (the orders table is `TableId(1)` there, so the two
/// workloads never collide).
pub const LISTS_TABLE: TableId = TableId(2);

/// Serialize an append list (concatenated LE u64 values).
pub fn encode_list(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Parse an append list; trailing partial words are dropped (they can
/// only come from a corrupted row, which the checker flags separately).
pub fn decode_list(buf: &[u8]) -> Vec<u64> {
    buf.chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("invariant: chunks_exact(8) yields 8-byte chunks")))
        .collect()
}

/// One inventory row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StockRow {
    /// Units on hand.
    pub quantity: u64,
}

impl StockRow {
    /// Serialize (8 bytes LE).
    pub fn encode(&self) -> Vec<u8> {
        self.quantity.to_le_bytes().to_vec()
    }

    /// Parse; `None` on malformed input.
    pub fn decode(buf: &[u8]) -> Option<StockRow> {
        Some(StockRow {
            quantity: u64::from_le_bytes(buf.get(0..8)?.try_into().ok()?),
        })
    }
}

/// One order row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderRow {
    /// Item purchased.
    pub item: u64,
    /// Units purchased.
    pub quantity: u32,
    /// Client that placed the order.
    pub client: u32,
}

impl OrderRow {
    /// Serialize (16 bytes LE).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&self.item.to_le_bytes());
        out.extend_from_slice(&self.quantity.to_le_bytes());
        out.extend_from_slice(&self.client.to_le_bytes());
        out
    }

    /// Parse; `None` on malformed input.
    pub fn decode(buf: &[u8]) -> Option<OrderRow> {
        Some(OrderRow {
            item: u64::from_le_bytes(buf.get(0..8)?.try_into().ok()?),
            quantity: u32::from_le_bytes(buf.get(8..12)?.try_into().ok()?),
            client: u32::from_le_bytes(buf.get(12..16)?.try_into().ok()?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_roundtrip() {
        let r = StockRow { quantity: 42 };
        assert_eq!(StockRow::decode(&r.encode()), Some(r));
        assert_eq!(StockRow::decode(b"abc"), None);
    }

    #[test]
    fn list_roundtrip() {
        let values = [7u64, 1 << 40, 0];
        assert_eq!(decode_list(&encode_list(&values)), values);
        assert_eq!(decode_list(&[]), Vec::<u64>::new());
        assert_eq!(decode_list(&[1, 2, 3]), Vec::<u64>::new());
    }

    #[test]
    fn order_roundtrip() {
        let r = OrderRow {
            item: 7,
            quantity: 3,
            client: 12,
        };
        assert_eq!(OrderRow::decode(&r.encode()), Some(r));
        assert_eq!(OrderRow::decode(&[0; 5]), None);
    }
}
