//! Cross-database consistency checking — the business-level collapse
//! detector.
//!
//! The paper's §I scenario: after recovering a backup, "some transaction
//! data are included in the inventory backup data but not in the payment
//! backup data, and vice versa". With the app-level ordering used here
//! (stock commit strictly before sales commit), any write-order-faithful
//! backup satisfies: *for every item, units decremented from stock ≥ units
//! sold in recorded orders*. An order whose stock decrement is missing is a
//! collapse.

use std::collections::HashMap;

use tsuru_minidb::MiniDb;
use tsuru_sim::SimTime;

use crate::model::{OrderRow, StockRow, ORDERS_TABLE, STOCK_TABLE};

/// One item's violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Oversold {
    /// Item id.
    pub item: u64,
    /// Units sold according to the sales database.
    pub sold: u64,
    /// Units actually decremented from stock.
    pub decremented: u64,
}

/// Outcome of the cross-database check.
#[derive(Debug, Clone)]
pub struct InvariantReport {
    /// Items examined.
    pub items_checked: usize,
    /// Orders found in the sales database.
    pub orders_found: u64,
    /// Items where sales exceed the stock decrement (collapse evidence).
    pub violations: Vec<Oversold>,
}

impl InvariantReport {
    /// True when no violation was found.
    pub fn consistent(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Check the recovered pair of databases against the initial stock level.
pub fn check_cross_db(sales: &MiniDb, stock: &MiniDb, initial_stock: u64) -> InvariantReport {
    // Units sold per item, from the orders table.
    let mut sold: HashMap<u64, u64> = HashMap::new();
    let orders = sales.scan_table(ORDERS_TABLE);
    for (_, buf) in &orders {
        if let Some(row) = OrderRow::decode(buf) {
            *sold.entry(row.item).or_default() += row.quantity as u64;
        }
    }
    // Units decremented per item, from the stock table.
    let mut violations = Vec::new();
    let items = stock.scan_table(STOCK_TABLE);
    let items_checked = items.len();
    let mut known: HashMap<u64, u64> = HashMap::new();
    for (item, buf) in &items {
        if let Some(row) = StockRow::decode(buf) {
            known.insert(*item, initial_stock.saturating_sub(row.quantity));
        }
    }
    for (&item, &units_sold) in &sold {
        let decremented = known.get(&item).copied().unwrap_or(0);
        if units_sold > decremented {
            violations.push(Oversold {
                item,
                sold: units_sold,
                decremented,
            });
        }
    }
    violations.sort_by_key(|v| v.item);
    InvariantReport {
        items_checked,
        orders_found: orders.len() as u64,
        violations,
    }
}

/// Business-level recovery-point metrics: which committed orders survived
/// in a recovered sales database.
#[derive(Debug, Clone)]
pub struct OrderRpo {
    /// Orders committed at the main site (acknowledged to clients).
    pub committed: u64,
    /// Of those, orders present in the recovered database.
    pub recovered: u64,
    /// Committed orders missing from the backup.
    pub lost: u64,
    /// Commit time of the newest recovered order (`None` if none).
    pub newest_recovered: Option<SimTime>,
}

/// Compare the primary's commit log with a recovered sales database.
pub fn order_rpo(committed_log: &[(u64, SimTime)], recovered_sales: &MiniDb) -> OrderRpo {
    let mut recovered = 0u64;
    let mut newest: Option<SimTime> = None;
    for (order_id, t) in committed_log {
        if recovered_sales
            .get_committed(ORDERS_TABLE, *order_id)
            .is_some()
        {
            recovered += 1;
            newest = Some(newest.map_or(*t, |n: SimTime| n.max(*t)));
        }
    }
    let committed = committed_log.len() as u64;
    OrderRpo {
        committed,
        recovered,
        lost: committed - recovered,
        newest_recovered: newest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsuru_minidb::{DbConfig, MiniDb};

    fn dbs() -> (MiniDb, MiniDb) {
        let cfg = DbConfig {
            data_blocks: 512,
            wal_blocks: 64,
            checkpoint_threshold: 0.8,
        };
        let (sales, _) = MiniDb::create("sales", cfg.clone());
        let (stock, _) = MiniDb::create("stock", cfg);
        (sales, stock)
    }

    fn seed(stock: &mut MiniDb, items: u64, initial: u64) {
        let tx = stock.begin();
        for i in 0..items {
            stock.put(tx, STOCK_TABLE, i, &StockRow { quantity: initial }.encode());
        }
        let _ = stock.commit(tx);
    }

    fn sell(sales: &mut MiniDb, stock: Option<&mut MiniDb>, order: u64, item: u64, qty: u32) {
        if let Some(stock) = stock {
            let cur = StockRow::decode(&stock.get_committed(STOCK_TABLE, item).unwrap())
                .unwrap()
                .quantity;
            let tx = stock.begin();
            stock.put(
                tx,
                STOCK_TABLE,
                item,
                &StockRow {
                    quantity: cur - qty as u64,
                }
                .encode(),
            );
            let _ = stock.commit(tx);
        }
        let tx = sales.begin();
        sales.put(
            tx,
            ORDERS_TABLE,
            order,
            &OrderRow {
                item,
                quantity: qty,
                client: 0,
            }
            .encode(),
        );
        let _ = sales.commit(tx);
    }

    #[test]
    fn faithful_pair_is_consistent() {
        let (mut sales, mut stock) = dbs();
        seed(&mut stock, 10, 100);
        sell(&mut sales, Some(&mut stock), 1, 3, 2);
        sell(&mut sales, Some(&mut stock), 2, 3, 1);
        sell(&mut sales, Some(&mut stock), 3, 7, 3);
        let rep = check_cross_db(&sales, &stock, 100);
        assert!(rep.consistent(), "{rep:?}");
        assert_eq!(rep.orders_found, 3);
        assert_eq!(rep.items_checked, 10);
    }

    #[test]
    fn stock_ahead_of_sales_is_allowed() {
        // Stock decremented but order not yet recorded: a legal in-flight
        // prefix.
        let (sales, mut stock) = dbs();
        seed(&mut stock, 5, 100);
        let tx = stock.begin();
        stock.put(tx, STOCK_TABLE, 1, &StockRow { quantity: 95 }.encode());
        let _ = stock.commit(tx);
        let rep = check_cross_db(&sales, &stock, 100);
        assert!(rep.consistent());
        assert_eq!(rep.orders_found, 0);
    }

    #[test]
    fn order_without_decrement_is_a_collapse() {
        let (mut sales, mut stock) = dbs();
        seed(&mut stock, 5, 100);
        // Order recorded, stock untouched — impossible under write-order
        // fidelity.
        sell(&mut sales, None, 1, 2, 3);
        let rep = check_cross_db(&sales, &stock, 100);
        assert!(!rep.consistent());
        assert_eq!(
            rep.violations,
            vec![Oversold {
                item: 2,
                sold: 3,
                decremented: 0
            }]
        );
    }

    #[test]
    fn partial_decrement_is_also_flagged() {
        let (mut sales, mut stock) = dbs();
        seed(&mut stock, 5, 100);
        sell(&mut sales, Some(&mut stock), 1, 2, 2); // consistent
        sell(&mut sales, None, 2, 2, 2); // second order missing decrement
        let rep = check_cross_db(&sales, &stock, 100);
        assert_eq!(rep.violations.len(), 1);
        assert_eq!(rep.violations[0].sold, 4);
        assert_eq!(rep.violations[0].decremented, 2);
    }

    #[test]
    fn order_rpo_counts_survivors() {
        let (mut sales, mut stock) = dbs();
        seed(&mut stock, 5, 100);
        sell(&mut sales, Some(&mut stock), 1, 0, 1);
        sell(&mut sales, Some(&mut stock), 2, 1, 1);
        let log = vec![
            (1, SimTime::from_secs(1)),
            (2, SimTime::from_secs(2)),
            (3, SimTime::from_secs(3)), // committed at primary, not in backup
        ];
        let rpo = order_rpo(&log, &sales);
        assert_eq!(rpo.committed, 3);
        assert_eq!(rpo.recovered, 2);
        assert_eq!(rpo.lost, 1);
        assert_eq!(rpo.newest_recovered, Some(SimTime::from_secs(2)));
    }
}
