//! Deterministic e-commerce workload generation.

use serde::{Deserialize, Serialize};
use tsuru_sim::{DetRng, SimDuration, Zipf};

/// Workload shape.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Closed-loop client count.
    pub clients: usize,
    /// Mean think time between a client's transactions (exponential).
    pub think_time_mean: SimDuration,
    /// Catalogue size.
    pub items: usize,
    /// Item-popularity skew (0 = uniform, 1 ≈ classic Zipf).
    pub zipf_theta: f64,
    /// Initial stock per item.
    pub initial_stock: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            clients: 8,
            think_time_mean: SimDuration::from_millis(5),
            items: 100,
            zipf_theta: 0.9,
            initial_stock: 1_000_000,
        }
    }
}

/// Which closed-loop workload a trial runs against the two databases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// The order workload (stock decrement then order row).
    Ecom,
    /// Bank transfers over the stock rows (total-balance invariant).
    Bank,
    /// Per-key ordered appends in the sales database.
    AppendList,
}

impl WorkloadKind {
    /// All workloads, in report order.
    pub const ALL: [WorkloadKind; 3] =
        [WorkloadKind::Ecom, WorkloadKind::Bank, WorkloadKind::AppendList];

    /// Stable label for tables and reports.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Ecom => "ecom",
            WorkloadKind::Bank => "bank",
            WorkloadKind::AppendList => "append-list",
        }
    }
}

/// One order to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderSpec {
    /// Globally unique order id.
    pub order_id: u64,
    /// Item to purchase.
    pub item: u64,
    /// Quantity (1–3).
    pub quantity: u32,
    /// Issuing client.
    pub client: u32,
}

/// Deterministic generator of orders and think times.
#[derive(Debug)]
pub struct WorkloadGen {
    /// Shape parameters.
    pub config: WorkloadConfig,
    rng: DetRng,
    zipf: Zipf,
    next_order: u64,
}

impl WorkloadGen {
    /// A generator seeded from a dedicated stream.
    pub fn new(config: WorkloadConfig, rng: DetRng) -> Self {
        let zipf = Zipf::new(config.items, config.zipf_theta);
        WorkloadGen {
            config,
            rng,
            zipf,
            next_order: 1,
        }
    }

    /// Generate the next order for `client`.
    pub fn next_order(&mut self, client: u32) -> OrderSpec {
        let order_id = self.next_order;
        self.next_order += 1;
        OrderSpec {
            order_id,
            item: self.zipf.sample(&mut self.rng) as u64,
            quantity: 1 + self.rng.gen_range(3) as u32,
            client,
        }
    }

    /// Sample a think time.
    pub fn think_time(&mut self) -> SimDuration {
        let mean = self.config.think_time_mean.as_nanos() as f64;
        SimDuration::from_nanos(self.rng.gen_exp(mean.max(1.0)) as u64)
    }

    /// Orders generated so far.
    pub fn orders_generated(&self) -> u64 {
        self.next_order - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_ids_are_unique_and_fields_bounded() {
        let mut g = WorkloadGen::new(WorkloadConfig::default(), DetRng::new(1));
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            let o = g.next_order(i % 8);
            assert!(seen.insert(o.order_id));
            assert!((o.item as usize) < g.config.items);
            assert!((1..=3).contains(&o.quantity));
        }
        assert_eq!(g.orders_generated(), 1000);
    }

    #[test]
    fn hot_items_dominate() {
        let mut g = WorkloadGen::new(
            WorkloadConfig {
                zipf_theta: 1.1,
                ..Default::default()
            },
            DetRng::new(2),
        );
        let mut counts = vec![0u32; g.config.items];
        for _ in 0..20_000 {
            counts[g.next_order(0).item as usize] += 1;
        }
        assert!(counts[0] > counts[50] * 5);
    }

    #[test]
    fn same_seed_same_workload() {
        let mk = || {
            let mut g = WorkloadGen::new(WorkloadConfig::default(), DetRng::new(7));
            (0..100)
                .map(|i| {
                    let o = g.next_order(i % 4);
                    (o.item, o.quantity, g.think_time())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn think_times_average_near_mean() {
        let mut g = WorkloadGen::new(
            WorkloadConfig {
                think_time_mean: SimDuration::from_millis(10),
                ..Default::default()
            },
            DetRng::new(3),
        );
        let n = 20_000;
        let total: u64 = (0..n).map(|_| g.think_time().as_nanos()).sum();
        let mean_ms = total as f64 / n as f64 / 1e6;
        assert!((mean_ms - 10.0).abs() < 0.5, "mean {mean_ms}ms");
    }
}
