//! Typed kernel events for the business-process driver.
//!
//! The closed-loop client lifecycle has exactly one self-scheduled hop —
//! "wake this client and run its next transaction" — used both for the
//! start-up stagger and for the post-commit think time. Carrying it as a
//! plain enum variant instead of a boxed closure makes the steady-state
//! client loop allocation-free on the kernel side.

use tsuru_sim::{DynEvent, Event, Sim};
use tsuru_storage::{HasStorage, StorageEvents};

use crate::app::HasEcom;
use crate::driver::client_txn;

/// One scheduled step of the business-process driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcomOp {
    /// Wake `client` and run its next order transaction (initial stagger
    /// and post-commit think time both land here).
    ClientThink {
        /// Closed-loop client index.
        client: u32,
    },
    /// Wake `client` of the bank-transfer workload.
    BankThink {
        /// Closed-loop client index.
        client: u32,
    },
    /// Wake `client` of the append-list workload.
    AppendThink {
        /// Closed-loop client index.
        client: u32,
    },
}

impl EcomOp {
    /// Fire this step.
    pub fn dispatch<S, E>(self, state: &mut S, sim: &mut Sim<S, E>)
    where
        S: HasStorage + HasEcom + 'static,
        E: EcomEvents<S>,
    {
        match self {
            EcomOp::ClientThink { client } => client_txn(state, sim, client),
            EcomOp::BankThink { client } => crate::bank::bank_txn(state, sim, client),
            EcomOp::AppendThink { client } => crate::append::append_txn(state, sim, client),
        }
    }
}

/// A kernel event type that can carry business-process steps (and, as a
/// supertrait, the storage data-plane steps every transaction bottoms out
/// in).
pub trait EcomEvents<S>: StorageEvents<S> {
    /// Wrap a driver step as a kernel event.
    fn ecom(op: EcomOp) -> Self;
}

impl<S: HasStorage + HasEcom + 'static> EcomEvents<S> for DynEvent<S> {
    fn ecom(op: EcomOp) -> Self {
        DynEvent::from_fn(Box::new(move |s, sim| op.dispatch(s, sim)))
    }
}
