//! The append-list workload: per-key ordered appends racing
//! replication.
//!
//! Each client appends globally unique values to one of a small set of
//! per-key lists held in the sales database ([`crate::LISTS_TABLE`]),
//! one atomic read-modify-write transaction per append, and
//! periodically reads a list back from the committed primary state.
//! Meanwhile the chaos judge scans recovered backup images mid-run —
//! the long analytics read of the paper's use case — so the recorded
//! history interleaves live appends with lagging image reads. The
//! elle-style checker then demands a single append order, prefix views
//! everywhere, and no acked append lost once the journal drains.

use tsuru_history::{space, KeyVer, OpData, Site, TxnOps};
use tsuru_sim::{DetRng, Sim, SimDuration};
use tsuru_storage::HasStorage;

use crate::app::HasEcom;
use crate::driver::{drive_plan, Which};
use crate::event::{EcomEvents, EcomOp};
use crate::model::{decode_list, encode_list, LISTS_TABLE};

/// Distinct list keys. Few enough that lists grow and interleave,
/// many enough that no row approaches the storage row-size cap.
pub const LIST_KEYS: u64 = 16;

/// Stop appending to a list at this length: the row stays well below
/// the database's value-size limit (128 × 8 bytes).
const MAX_LIST: usize = 120;

/// Mutable state of the append-list workload.
#[derive(Debug)]
pub struct AppendState {
    rng: DetRng,
    /// Next value to append; globally unique within a run.
    next_value: u64,
    /// Appends fully committed (storage-acked).
    pub committed: u64,
    /// Every `read_every`-th client op is a list read.
    read_every: u64,
    ops_started: u64,
}

impl AppendState {
    /// A new workload state; `rng` must come from a dedicated stream of
    /// the trial seed.
    pub fn new(rng: DetRng) -> Self {
        AppendState {
            rng,
            next_value: 1,
            committed: 0,
            read_every: 8,
            ops_started: 0,
        }
    }
}

/// Start the closed-loop append clients (staggered like the order
/// clients). The state's [`crate::EcomState::append`] must be `Some`.
pub fn start_append_clients<S, E>(state: &mut S, sim: &mut Sim<S, E>)
where
    S: HasStorage + HasEcom + 'static,
    E: EcomEvents<S>,
{
    assert!(
        state.ecom().append.is_some(),
        "install AppendState before starting append clients"
    );
    let n = state.ecom().gen.config.clients as u32;
    for client in 0..n {
        sim.schedule_event_in(
            SimDuration::from_micros(client as u64 * 13),
            E::ecom(EcomOp::AppendThink { client }),
        );
    }
}

/// Execute one append-list operation for `client` (an append, or every
/// `read_every`-th op a list read), then reschedule.
pub fn append_txn<S, E>(state: &mut S, sim: &mut Sim<S, E>, client: u32)
where
    S: HasStorage + HasEcom + 'static,
    E: EcomEvents<S>,
{
    if state.ecom().stopped {
        return;
    }
    let now = sim.now();
    let hist = state.storage().history.clone();

    let (is_read, key, value) = {
        let ap = state
            .ecom_mut()
            .append
            .as_mut()
            .expect("invariant: append events are only scheduled once AppendState is installed");
        let is_read = ap.ops_started % ap.read_every == ap.read_every - 1;
        ap.ops_started += 1;
        let key = ap.rng.gen_range(LIST_KEYS);
        let value = ap.next_value;
        if !is_read {
            ap.next_value += 1;
        }
        (is_read, key, value)
    };

    let current = |s: &S, key: u64| -> Vec<u64> {
        s.ecom()
            .sales
            .db
            .get_committed(LISTS_TABLE, key)
            .map(|b| decode_list(&b))
            .unwrap_or_default()
    };

    if is_read {
        let op = hist.invoke(
            client,
            now,
            OpData::ReadList {
                key,
                site: Site::Primary,
            },
        );
        let values = current(state, key);
        hist.ok(client, op, now, OpData::List { key, values });
        let think = state.ecom_mut().gen.think_time();
        sim.schedule_event_in(think, E::ecom(EcomOp::AppendThink { client }));
        return;
    }

    let mut values = current(state, key);
    if values.len() >= MAX_LIST {
        // List full: skip the append (the value is not consumed) and
        // come back later — deterministic, and the row never outgrows
        // the storage value cap.
        let think = state.ecom_mut().gen.think_time();
        sim.schedule_event_in(think, E::ecom(EcomOp::AppendThink { client }));
        return;
    }

    let op = hist.invoke(client, now, OpData::Append { key, value });
    let mut txn = TxnOps::default();
    if hist.is_enabled() {
        txn.reads.push(KeyVer {
            space: space::LISTS,
            key,
            version: hist.read_version(space::LISTS, key),
        });
    }
    values.push(value);
    let plan = {
        let e = state.ecom_mut();
        let tx = e.sales.db.begin();
        e.sales.db.put(tx, LISTS_TABLE, key, &encode_list(&values));
        e.sales.db.commit(tx)
    };
    if hist.is_enabled() {
        txn.writes.push(KeyVer {
            space: space::LISTS,
            key,
            version: hist.install_version(space::LISTS, key),
        });
    }
    drive_plan(state, sim, Which::Sales, plan, move |s, sim, ok| {
        if !ok {
            // Site disaster: the op stays pending (indeterminate).
            s.ecom_mut().stopped = true;
            return;
        }
        hist.ok(client, op, sim.now(), OpData::Txn(txn));
        let e = s.ecom_mut();
        e.append
            .as_mut()
            .expect("invariant: append events are only scheduled once AppendState is installed")
            .committed += 1;
        let think = e.gen.think_time();
        sim.schedule_event_in(think, E::ecom(EcomOp::AppendThink { client }));
    });
}
