//! # tsuru-ecom — the e-commerce business process
//!
//! The paper's motivating application (§I, §II): a transactional order
//! workload spanning a *stock* database and a *sales* database on separate
//! volume sets, with app-level ordering (stock commit strictly before sales
//! commit).
//!
//! - [`EcomState`] + [`driver`] — closed-loop clients running on the
//!   discrete-event kernel, pushing every commit's I/O through the
//!   simulated array.
//! - [`WorkloadGen`] — deterministic Zipf-skewed order generation.
//! - [`check_cross_db`] — the business-level collapse detector: an order
//!   present in a recovered sales database without its stock decrement is
//!   exactly the "collapsed backup" of the paper.
//! - [`order_rpo`] — business-level recovery-point metrics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
pub mod append;
pub mod bank;
mod checker;
pub mod driver;
pub mod event;
mod model;
pub mod scan;
mod workload;

pub use app::{
    apply_plan_direct, install_db, seed_stock, DbInstance, EcomMetrics, EcomState, HasEcom,
};
pub use append::AppendState;
pub use bank::BankState;
pub use checker::{check_cross_db, order_rpo, InvariantReport, OrderRpo, Oversold};
pub use event::{EcomEvents, EcomOp};
pub use model::{
    decode_list, encode_list, OrderRow, StockRow, LISTS_TABLE, ORDERS_TABLE, STOCK_TABLE,
};
pub use workload::{OrderSpec, WorkloadConfig, WorkloadGen, WorkloadKind};
