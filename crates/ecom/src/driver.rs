//! The discrete-event transaction driver.
//!
//! Runs the paper's business process on the simulated storage: closed-loop
//! clients issue order transactions, each of which commits to the *stock*
//! database first and the *sales* database second (app-level ordering).
//! Each commit's [`IoPlan`] is pushed through the array with real timing
//! and phase barriers, so the transaction latency a client sees is exactly
//! the storage acknowledgement latency — the quantity ADC is supposed to
//! keep flat and SDC inflates (claims C1/C2).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use tsuru_history::{space, KeyVer, OpData, TxnOps};
use tsuru_minidb::{IoPlan, IoRequest};
use tsuru_sim::{Sim, SimDuration};
use tsuru_storage::{engine::host_write, HasStorage, WriteAck};

use crate::app::HasEcom;
use crate::event::{EcomEvents, EcomOp};
use crate::model::{OrderRow, StockRow, ORDERS_TABLE, STOCK_TABLE};
use crate::workload::OrderSpec;

/// Which database a plan belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Which {
    /// The sales (orders) database.
    Sales,
    /// The stock (inventory) database.
    Stock,
}

/// Drive an [`IoPlan`] through the array: writes within a phase are issued
/// concurrently; the next phase starts only after every write of the
/// current phase acknowledged. `done` receives `false` if any write failed
/// (site disaster).
pub fn drive_plan<S, E, F>(state: &mut S, sim: &mut Sim<S, E>, which: Which, plan: IoPlan, done: F)
where
    S: HasStorage + HasEcom + 'static,
    E: EcomEvents<S>,
    F: FnOnce(&mut S, &mut Sim<S, E>, bool) + 'static,
{
    drive_phases(state, sim, which, plan.phases.into(), done);
}

fn drive_phases<S, E, F>(
    state: &mut S,
    sim: &mut Sim<S, E>,
    which: Which,
    mut phases: VecDeque<Vec<IoRequest>>,
    done: F,
) where
    S: HasStorage + HasEcom + 'static,
    E: EcomEvents<S>,
    F: FnOnce(&mut S, &mut Sim<S, E>, bool) + 'static,
{
    let Some(phase) = phases.pop_front() else {
        done(state, sim, true);
        return;
    };
    debug_assert!(!phase.is_empty(), "IoPlan phases are never empty");
    let remaining = Rc::new(Cell::new(phase.len()));
    let all_ok = Rc::new(Cell::new(true));
    // The continuation is shared by all write callbacks; the last one fires
    // it.
    type Cont<F> = Rc<RefCell<Option<(VecDeque<Vec<IoRequest>>, F)>>>;
    let cont: Cont<F> = Rc::new(RefCell::new(Some((phases, done))));

    for io in phase {
        let vol = {
            let e = state.ecom();
            match which {
                Which::Sales => e.sales.volref(io.vol),
                Which::Stock => e.stock.volref(io.vol),
            }
        };
        let remaining = Rc::clone(&remaining);
        let all_ok = Rc::clone(&all_ok);
        let cont = Rc::clone(&cont);
        host_write(state, sim, vol, io.lba, io.data, move |s, sim, ack| {
            match ack {
                WriteAck::Failed(_) => {
                    all_ok.set(false);
                    s.ecom_mut().metrics.failed_writes += 1;
                }
                WriteAck::Degraded { .. } => {
                    s.ecom_mut().metrics.degraded_acks += 1;
                }
                WriteAck::Ok { .. } => {}
            }
            remaining.set(remaining.get() - 1);
            if remaining.get() == 0 {
                let (rest, done) = cont
                    .borrow_mut()
                    .take()
                    .expect("invariant: the continuation is taken only when the last ack arrives");
                if all_ok.get() {
                    drive_phases(s, sim, which, rest, done);
                } else {
                    done(s, sim, false);
                }
            }
        });
    }
}

/// Start the closed-loop clients; each runs until the app is stopped or the
/// order cap is reached. Clients are staggered by a few microseconds so
/// their first transactions do not collide artificially.
pub fn start_clients<S, E>(state: &mut S, sim: &mut Sim<S, E>)
where
    S: HasStorage + HasEcom + 'static,
    E: EcomEvents<S>,
{
    let n = state.ecom().gen.config.clients as u32;
    for client in 0..n {
        sim.schedule_event_in(
            SimDuration::from_micros(client as u64 * 13),
            E::ecom(EcomOp::ClientThink { client }),
        );
    }
}

/// Start whichever closed-loop workload is installed on the state:
/// bank-transfer or append-list when present, the order workload
/// otherwise. Fault injectors use this to restart clients after a main
/// site recovery without knowing which workload a trial runs.
pub fn start_workload_clients<S, E>(state: &mut S, sim: &mut Sim<S, E>)
where
    S: HasStorage + HasEcom + 'static,
    E: EcomEvents<S>,
{
    if state.ecom().bank.is_some() {
        crate::bank::start_bank_clients(state, sim);
    } else if state.ecom().append.is_some() {
        crate::append::start_append_clients(state, sim);
    } else {
        start_clients(state, sim);
    }
}

/// Execute one order transaction for `client`, then reschedule.
pub fn client_txn<S, E>(state: &mut S, sim: &mut Sim<S, E>, client: u32)
where
    S: HasStorage + HasEcom + 'static,
    E: EcomEvents<S>,
{
    {
        let e = state.ecom();
        if e.stopped {
            return;
        }
        if let Some(cap) = e.stop_after_orders {
            if e.gen.orders_generated() >= cap {
                return;
            }
        }
    }
    let started = sim.now();
    let spec = state.ecom_mut().gen.next_order(client);

    // History: record the client's intent; the op stays *pending* (its
    // outcome indeterminate) until the final storage ack. Versions are
    // taken at the synchronous in-memory commit points, so the recorded
    // chains follow the databases' serialization order.
    let hist = state.storage().history.clone();
    let op = hist.invoke(
        client,
        started,
        OpData::Order {
            order_id: spec.order_id,
            item: spec.item,
            quantity: spec.quantity,
        },
    );
    let mut txn = TxnOps::default();

    // Phase 1: decrement inventory in the stock database.
    if hist.is_enabled() {
        txn.reads.push(KeyVer {
            space: space::STOCK,
            key: spec.item,
            version: hist.read_version(space::STOCK, spec.item),
        });
    }
    let stock_plan = {
        let e = state.ecom_mut();
        let tx = e.stock.db.begin();
        let row = e
            .stock
            .db
            .get(tx, STOCK_TABLE, spec.item)
            .and_then(|b| StockRow::decode(&b))
            .expect("invariant: order specs draw items from the seeded catalog");
        let updated = StockRow {
            quantity: row.quantity.saturating_sub(spec.quantity as u64),
        };
        e.stock.db.put(tx, STOCK_TABLE, spec.item, &updated.encode());
        e.stock.db.commit(tx)
    };
    if hist.is_enabled() {
        txn.writes.push(KeyVer {
            space: space::STOCK,
            key: spec.item,
            version: hist.install_version(space::STOCK, spec.item),
        });
    }
    drive_plan(state, sim, Which::Stock, stock_plan, move |s, sim, ok| {
        if !ok {
            s.ecom_mut().stopped = true;
            return;
        }
        // Phase 2: record the order in the sales database. The app-level
        // ordering (stock before sales) is what makes "order present but
        // stock not decremented" impossible in any write-order-faithful
        // backup — and exactly what a collapsed backup violates.
        let sales_plan = {
            let e = s.ecom_mut();
            let tx = e.sales.db.begin();
            let row = OrderRow {
                item: spec.item,
                quantity: spec.quantity,
                client: spec.client,
            };
            e.sales.db.put(tx, ORDERS_TABLE, spec.order_id, &row.encode());
            e.sales.db.commit(tx)
        };
        let mut txn = txn;
        if hist.is_enabled() {
            txn.writes.push(KeyVer {
                space: space::ORDERS,
                key: spec.order_id,
                version: hist.install_version(space::ORDERS, spec.order_id),
            });
        }
        drive_plan(s, sim, Which::Sales, sales_plan, move |s, sim, ok| {
            if !ok {
                s.ecom_mut().stopped = true;
                return;
            }
            let now = sim.now();
            hist.ok(client, op, now, OpData::Txn(txn));
            let e = s.ecom_mut();
            e.metrics.txn_latency.record_duration(now - started);
            e.metrics.committed_orders += 1;
            e.metrics.committed_log.push((spec.order_id, now));
            let think = e.gen.think_time();
            sim.schedule_event_in(think, E::ecom(EcomOp::ClientThink { client }));
        });
    });
}

/// Re-export for tests and higher layers needing to inspect specs.
pub type Order = OrderSpec;
