//! End-to-end: the e-commerce workload over replicated storage, site
//! failure, failover, recovery, and the collapse/no-collapse dichotomy.

#![allow(clippy::field_reassign_with_default)]

use tsuru_ecom::driver::start_clients;
use tsuru_ecom::{
    check_cross_db, install_db, order_rpo, seed_stock, EcomMetrics, EcomState, HasEcom,
    WorkloadConfig, WorkloadGen,
};
use tsuru_minidb::{DbConfig, MiniDb};
use tsuru_sim::{DetRng, Sim, SimDuration, SimTime};
use tsuru_simnet::LinkConfig;
use tsuru_storage::{
    ArrayId, ArrayPerf, EngineConfig, GroupId, HasStorage, StorageWorld, VolRef, VolumeView,
};

struct World {
    st: StorageWorld,
    ecom: EcomState,
}

impl HasStorage for World {
    fn storage(&self) -> &StorageWorld {
        &self.st
    }
    fn storage_mut(&mut self) -> &mut StorageWorld {
        &mut self.st
    }
}

impl HasEcom for World {
    fn ecom(&self) -> &EcomState {
        &self.ecom
    }
    fn ecom_mut(&mut self) -> &mut EcomState {
        &mut self.ecom
    }
}

struct Rig {
    world: World,
    sim: Sim<World>,
    main: ArrayId,
    backup: ArrayId,
    /// (sales wal, sales data, stock wal, stock data) on the main array.
    vols: [VolRef; 4],
    /// Matching secondaries on the backup array.
    replicas: [VolRef; 4],
    groups: Vec<GroupId>,
}

const DB_CFG: DbConfig = DbConfig {
    data_blocks: 4096,
    wal_blocks: 512,
    checkpoint_threshold: 0.8,
};

/// Build a two-site rig. `consistency_group` selects one shared CG (the
/// paper's design) vs one group per volume (the naive ablation). The pump
/// jitter models how far independent replication sessions drift apart;
/// consistency-group correctness must not depend on it.
fn rig(seed: u64, consistency_group: bool, replicate: bool) -> Rig {
    let mut cfg = EngineConfig::default();
    cfg.pump_jitter = SimDuration::from_millis(2);
    let mut st = StorageWorld::new(seed, cfg);
    let main = st.add_array("vsp-main", ArrayPerf::default());
    let backup = st.add_array("vsp-backup", ArrayPerf::default());
    let link = st.add_link(LinkConfig::metro());
    let reverse = st.add_link(LinkConfig::metro());

    let names = ["sales-wal", "sales-data", "stock-wal", "stock-data"];
    let sizes = [512u64, 4096, 512, 4096];
    let vols: Vec<VolRef> = names
        .iter()
        .zip(sizes)
        .map(|(n, s)| st.create_volume(main, *n, s))
        .collect();

    // Databases are formatted and seeded before replication starts; the
    // initial copy then carries the images to the backup site.
    let sales = install_db(&mut st, "sales", vols[0], vols[1], DB_CFG.clone());
    let mut stock = install_db(&mut st, "stock", vols[2], vols[3], DB_CFG.clone());
    let wl = WorkloadConfig {
        clients: 8,
        think_time_mean: SimDuration::from_millis(2),
        items: 50,
        zipf_theta: 0.9,
        initial_stock: 1_000_000,
    };
    seed_stock(&mut st, &mut stock, wl.items, wl.initial_stock);

    let replicas: Vec<VolRef> = names
        .iter()
        .zip(sizes)
        .map(|(n, s)| st.create_volume(backup, format!("{n}-r"), s))
        .collect();

    let mut groups = Vec::new();
    if replicate {
        if consistency_group {
            let g = st.create_adc_group("cg-shop", link, reverse, 64 << 20);
            for i in 0..4 {
                st.add_pair(g, vols[i], replicas[i]);
            }
            groups.push(g);
        } else {
            for i in 0..4 {
                let g = st.create_adc_group(format!("solo-{i}"), link, reverse, 64 << 20);
                st.add_pair(g, vols[i], replicas[i]);
                groups.push(g);
            }
        }
    }

    let ecom = EcomState {
        sales,
        stock,
        gen: WorkloadGen::new(wl, DetRng::new(seed).derive(99)),
        metrics: EcomMetrics::default(),
        stopped: false,
        stop_after_orders: None,
        bank: None,
        append: None,
    };
    Rig {
        world: World { st, ecom },
        sim: Sim::new(),
        main,
        backup,
        vols: [vols[0], vols[1], vols[2], vols[3]],
        replicas: [replicas[0], replicas[1], replicas[2], replicas[3]],
        groups,
    }
}

type Recovered = Result<(MiniDb, tsuru_minidb::RecoveryReport), tsuru_minidb::RecoveryError>;

fn recover_pair(st: &StorageWorld, array: ArrayId, vols: &[VolRef; 4]) -> (Recovered, Recovered) {
    let arr = st.array(array);
    let sales = MiniDb::recover(
        "sales-r",
        &VolumeView::new(arr, vols[0].volume),
        &VolumeView::new(arr, vols[1].volume),
        DB_CFG.clone(),
    );
    let stock = MiniDb::recover(
        "stock-r",
        &VolumeView::new(arr, vols[2].volume),
        &VolumeView::new(arr, vols[3].volume),
        DB_CFG.clone(),
    );
    (sales, stock)
}

#[test]
fn workload_commits_and_live_volumes_recover_exactly() {
    let mut r = rig(11, true, false);
    r.world.ecom.stop_after_orders = Some(300);
    start_clients(&mut r.world, &mut r.sim);
    r.sim.run(&mut r.world);

    let m = &r.world.ecom.metrics;
    assert_eq!(m.committed_orders, 300);
    assert_eq!(m.failed_writes, 0);
    assert!(m.txn_latency.summary().p50 > 0);

    let (sales, stock) = recover_pair(&r.world.st, r.main, &r.vols);
    let (sales, _) = sales.expect("sales recovers");
    let (stock, _) = stock.expect("stock recovers");
    let rep = check_cross_db(&sales, &stock, 1_000_000);
    assert!(rep.consistent(), "{:?}", rep.violations);
    assert_eq!(rep.orders_found, 300);
    let rpo = order_rpo(&r.world.ecom.metrics.committed_log, &sales);
    assert_eq!(rpo.lost, 0, "live volumes lose nothing after drain");
}

#[test]
fn consistency_group_failover_never_collapses() {
    for seed in [1u64, 2, 3] {
        let mut r = rig(seed, true, true);
        start_clients(&mut r.world, &mut r.sim);
        let main = r.main;
        // Surprise failure mid-run.
        r.sim
            .schedule_at(SimTime::from_millis(120), move |w: &mut World, sim| {
                w.st.fail_array(main, sim.now());
            });
        r.sim.run_until(&mut r.world, SimTime::from_millis(400));
        assert!(r.world.ecom.stopped, "clients observe the disaster");
        let committed = r.world.ecom.metrics.committed_orders;
        assert!(committed > 50, "workload ran before the failure");

        for &g in &r.groups {
            r.world.st.promote_group(g);
        }
        // Storage-level verdict: prefix-consistent.
        let rep = r.world.st.verify_consistency(&r.groups);
        assert!(rep.is_consistent(), "seed {seed}: {rep:?}");

        // Behavioural verdict: both DBs recover, invariant holds.
        let (sales, stock) = recover_pair(&r.world.st, r.backup, &r.replicas);
        let (sales, _) = sales.expect("sales recovers from CG backup");
        let (stock, _) = stock.expect("stock recovers from CG backup");
        let inv = check_cross_db(&sales, &stock, 1_000_000);
        assert!(inv.consistent(), "seed {seed}: {:?}", inv.violations);

        // RPO is bounded: we lose only the un-replicated tail.
        let rpo = order_rpo(&r.world.ecom.metrics.committed_log, &sales);
        assert_eq!(rpo.committed, committed);
        assert!(rpo.recovered > 0, "seed {seed}: backup has data");
    }
}

#[test]
fn naive_groups_produce_skewed_cuts() {
    let mut storage_collapses = 0;
    let mut business_collapses = 0;
    for seed in [1u64, 2, 3, 4, 5] {
        let mut r = rig(seed, false, true);
        start_clients(&mut r.world, &mut r.sim);
        let main = r.main;
        r.sim
            .schedule_at(SimTime::from_millis(120), move |w: &mut World, sim| {
                w.st.fail_array(main, sim.now());
            });
        r.sim.run_until(&mut r.world, SimTime::from_millis(400));
        for &g in &r.groups {
            r.world.st.promote_group(g);
        }
        let rep = r.world.st.verify_consistency(&r.groups);
        if !rep.prefix.consistent {
            storage_collapses += 1;
        }
        let (sales, stock) = recover_pair(&r.world.st, r.backup, &r.replicas);
        match (sales, stock) {
            (Ok((sales, _)), Ok((stock, _))) => {
                if !check_cross_db(&sales, &stock, 1_000_000).consistent() {
                    business_collapses += 1;
                }
            }
            // A hard recovery failure is also a collapse.
            _ => business_collapses += 1,
        }
    }
    assert!(
        storage_collapses >= 3,
        "naive per-volume ADC should usually violate write-order fidelity \
         (got {storage_collapses}/5)"
    );
    // Business-level damage is probabilistic per seed; the benches quantify
    // it over many trials. Here we only require the mechanism to exist.
    println!("business collapses: {business_collapses}/5");
}

#[test]
fn runs_are_bit_reproducible() {
    let run = |seed: u64| {
        let mut r = rig(seed, true, true);
        r.world.ecom.stop_after_orders = Some(150);
        start_clients(&mut r.world, &mut r.sim);
        r.sim.run(&mut r.world);
        (
            r.world.ecom.metrics.committed_log.clone(),
            r.world.ecom.metrics.txn_latency.summary(),
            r.world.st.ack_log.len(),
        )
    };
    assert_eq!(run(9), run(9));
}

/// Long run with a deliberately small WAL: automatic checkpoints (shadow-
/// paging flush + superblock + WAL epoch reset) interleave with journal
/// replication and a surprise failure. The CG guarantee must hold across
/// epoch boundaries too.
#[test]
fn checkpoints_under_replication_survive_disaster() {
    for seed in [41u64, 42] {
        let mut cfg = EngineConfig::default();
        cfg.pump_jitter = SimDuration::from_millis(1);
        let mut st = StorageWorld::new(seed, cfg);
        let main = st.add_array("m", ArrayPerf::default());
        let backup = st.add_array("b", ArrayPerf::default());
        let link = st.add_link(LinkConfig::metro());
        let reverse = st.add_link(LinkConfig::metro());

        let small_db = DbConfig {
            data_blocks: 8192,
            wal_blocks: 48, // ~150 KiB: checkpoints every few hundred txns
            checkpoint_threshold: 0.7,
        };
        let names = ["sales-wal", "sales-data", "stock-wal", "stock-data"];
        let sizes = [48u64, 8192, 48, 8192];
        let vols: Vec<VolRef> = names
            .iter()
            .zip(sizes)
            .map(|(n, s)| st.create_volume(main, *n, s))
            .collect();
        let sales = install_db(&mut st, "sales", vols[0], vols[1], small_db.clone());
        let mut stock = install_db(&mut st, "stock", vols[2], vols[3], small_db.clone());
        let wl = WorkloadConfig {
            clients: 8,
            think_time_mean: SimDuration::from_millis(1),
            items: 40,
            zipf_theta: 0.9,
            initial_stock: 1_000_000,
        };
        seed_stock(&mut st, &mut stock, wl.items, wl.initial_stock);
        let replicas: Vec<VolRef> = names
            .iter()
            .zip(sizes)
            .map(|(n, s)| st.create_volume(backup, format!("{n}-r"), s))
            .collect();
        let g = st.create_adc_group("cg", link, reverse, 64 << 20);
        for i in 0..4 {
            st.add_pair(g, vols[i], replicas[i]);
        }
        let mut world = World {
            st,
            ecom: EcomState {
                sales,
                stock,
                gen: WorkloadGen::new(wl, DetRng::new(seed).derive(99)),
                metrics: EcomMetrics::default(),
                stopped: false,
                stop_after_orders: None,
                bank: None,
                append: None,
            },
        };
        let mut sim: Sim<World> = Sim::new();
        start_clients(&mut world, &mut sim);
        sim.schedule_at(SimTime::from_millis(900), move |w: &mut World, sim| {
            w.st.fail_array(main, sim.now());
        });
        sim.run_until(&mut world, SimTime::from_millis(1200));

        // Plenty of transactions, and the engines definitely checkpointed.
        let committed = world.ecom.metrics.committed_orders;
        assert!(committed > 2000, "seed {seed}: committed {committed}");
        assert!(
            world.ecom.sales.db.stats().checkpoints > 2,
            "seed {seed}: sales checkpoints {}",
            world.ecom.sales.db.stats().checkpoints
        );

        world.st.promote_group(g);
        assert!(world.st.verify_consistency(&[g]).is_consistent());
        let arr = world.st.array(backup);
        let sales = MiniDb::recover(
            "s",
            &VolumeView::new(arr, replicas[0].volume),
            &VolumeView::new(arr, replicas[1].volume),
            small_db.clone(),
        );
        let stock = MiniDb::recover(
            "t",
            &VolumeView::new(arr, replicas[2].volume),
            &VolumeView::new(arr, replicas[3].volume),
            small_db.clone(),
        );
        let (sales, srep) = sales.expect("sales recovers across WAL epochs");
        let (stock, _) = stock.expect("stock recovers across WAL epochs");
        assert!(srep.epoch > 1, "recovered into a later WAL epoch");
        let inv = check_cross_db(&sales, &stock, 1_000_000);
        assert!(inv.consistent(), "seed {seed}: {:?}", inv.violations);
        let rpo = order_rpo(&world.ecom.metrics.committed_log, &sales);
        assert!(rpo.recovered > 1000, "seed {seed}: {rpo:?}");
    }
}
