//! The anomaly fixture corpus: one hand-written history per anomaly
//! class the paper's failure modes can produce, each asserted to be
//! flagged with exactly the right [`AnomalyKind`] by the *top-level*
//! [`check_history`] entry point (not the individual checker), plus
//! property tests that valid histories — serial transaction schedules
//! and faithful append/observe interleavings — are never flagged.
//!
//! The fixtures double as documentation: each one is the minimal
//! client-visible shape of a real storage failure —
//!
//! * **G1c write cycle** — circular information flow between two
//!   committed transactions; no serial order explains both.
//! * **Lost update** — two transactions read the same version and both
//!   wrote it; one increment swallowed the other.
//! * **Lost append** — an acked append missing from the drained backup
//!   image (the paper's backup-consistency claim, falsified).
//! * **Stale backup read** — an observer's view of a list rewinds: a
//!   torn image served state older than one already observed.

use proptest::prelude::*;
use tsuru_history::{
    check_history, AnomalyKind, CheckConfig, KeyVer, OpData, Recorder, Site, TxnOps,
};
use tsuru_sim::SimTime;

fn kv(space: u32, key: u64, version: u64) -> KeyVer {
    KeyVer { space, key, version }
}

/// Record a committed transaction with the given footprint.
fn commit(r: &Recorder, process: u32, t_us: u64, reads: Vec<KeyVer>, writes: Vec<KeyVer>) {
    let op = r.invoke(
        process,
        SimTime::from_micros(t_us),
        OpData::Transfer { from: 0, to: 1, amount: 1 },
    );
    r.ok(
        process,
        op,
        SimTime::from_micros(t_us + 1),
        OpData::Txn(TxnOps { reads, writes }),
    );
}

fn append(r: &Recorder, process: u32, t_us: u64, key: u64, value: u64) {
    let op = r.invoke(
        process,
        SimTime::from_micros(t_us),
        OpData::Append { key, value },
    );
    r.ok(
        process,
        op,
        SimTime::from_micros(t_us + 1),
        OpData::Txn(TxnOps::default()),
    );
}

fn read_list(r: &Recorder, process: u32, t_us: u64, key: u64, site: Site, values: &[u64]) {
    let op = r.invoke(
        process,
        SimTime::from_micros(t_us),
        OpData::ReadList { key, site },
    );
    r.ok(
        process,
        op,
        SimTime::from_micros(t_us),
        OpData::List { key, values: values.to_vec() },
    );
}

/// The kinds flagged by a verdict, deduplicated in report order.
fn kinds(r: &Recorder) -> Vec<AnomalyKind> {
    let verdict = check_history(&r.history(), &CheckConfig::default());
    let mut out: Vec<AnomalyKind> = Vec::new();
    for a in verdict.anomalies() {
        if !out.contains(&a.kind) {
            out.push(a.kind);
        }
    }
    out
}

// ---------------------------------------------------------------- fixtures

#[test]
fn fixture_g1c_write_cycle() {
    let r = Recorder::enabled();
    // T1 installs x=1 and reads y=1; T2 installs y=1 and reads x=1.
    // Each saw the other's write: information flowed in a circle.
    commit(&r, 1, 10, vec![kv(1, 2, 1)], vec![kv(1, 1, 1)]);
    commit(&r, 2, 11, vec![kv(1, 1, 1)], vec![kv(1, 2, 1)]);
    assert_eq!(kinds(&r), vec![AnomalyKind::WriteCycle]);

    let verdict = check_history(&r.history(), &CheckConfig::default());
    let a = verdict.anomalies().next().expect("one anomaly");
    assert_eq!(a.ops.len(), 2, "both cycle members must be named: {a:?}");
    assert!(a.detail.contains("cycle"), "{}", a.detail);
}

#[test]
fn fixture_lost_update() {
    let r = Recorder::enabled();
    // Both transactions read version 0 of key 5 and both installed a
    // successor: whichever landed second erased the other's effect.
    commit(&r, 1, 10, vec![kv(3, 5, 0)], vec![kv(3, 5, 1)]);
    commit(&r, 2, 11, vec![kv(3, 5, 0)], vec![kv(3, 5, 2)]);
    assert_eq!(kinds(&r), vec![AnomalyKind::LostUpdate]);
}

#[test]
fn fixture_lost_append() {
    let r = Recorder::enabled();
    // Two acked appends; the drained backup image only recovered the
    // first — the second ack was a lie.
    append(&r, 1, 10, 7, 1);
    append(&r, 1, 20, 7, 2);
    read_list(&r, 1_001, 40, 7, Site::Primary, &[1, 2]);
    read_list(&r, 1_000, 50, 7, Site::BackupFinal, &[1]);
    assert_eq!(kinds(&r), vec![AnomalyKind::LostAppend]);

    let verdict = check_history(&r.history(), &CheckConfig::default());
    let lost = verdict
        .anomalies()
        .find(|a| a.kind == AnomalyKind::LostAppend)
        .expect("lost-append present");
    assert!(lost.detail.contains("[2]"), "{}", lost.detail);
    assert!(lost.detail.contains("backup"), "{}", lost.detail);
}

#[test]
fn fixture_stale_backup_read() {
    let r = Recorder::enabled();
    // The backup reader observed [1, 2], then a torn image served the
    // older [1]: client-visible time travel.
    append(&r, 1, 10, 0, 1);
    append(&r, 1, 20, 0, 2);
    read_list(&r, 1_000, 30, 0, Site::Backup, &[1, 2]);
    read_list(&r, 1_000, 40, 0, Site::Backup, &[1]);
    assert_eq!(kinds(&r), vec![AnomalyKind::StaleRead]);
}

#[test]
fn fixtures_name_offending_ops_in_history_order() {
    // Every corpus anomaly must carry a non-empty, sorted op
    // subsequence — the contract repro/chaos violations rely on.
    let fixtures: Vec<Recorder> = {
        let g1c = Recorder::enabled();
        commit(&g1c, 1, 10, vec![kv(1, 2, 1)], vec![kv(1, 1, 1)]);
        commit(&g1c, 2, 11, vec![kv(1, 1, 1)], vec![kv(1, 2, 1)]);
        let lost = Recorder::enabled();
        append(&lost, 1, 10, 7, 1);
        append(&lost, 1, 20, 7, 2);
        read_list(&lost, 1_000, 50, 7, Site::BackupFinal, &[1]);
        vec![g1c, lost]
    };
    for r in &fixtures {
        let verdict = check_history(&r.history(), &CheckConfig::default());
        assert!(!verdict.is_clean());
        for a in verdict.anomalies() {
            assert!(!a.ops.is_empty(), "anomaly without ops: {a:?}");
            let mut sorted = a.ops.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, a.ops, "ops out of history order: {a:?}");
        }
    }
}

// ---------------------------------------------- valid-history proptests

/// One transaction of a serial schedule: which keys to read, which to
/// write, drawn from a tiny keyspace so contention is guaranteed.
#[derive(Debug, Clone)]
struct SerialTxn {
    reads: Vec<u64>,
    writes: Vec<u64>,
    acked: bool,
}

fn serial_txn_strategy() -> impl Strategy<Value = SerialTxn> {
    (
        prop::collection::vec(0u64..4, 0..3),
        prop::collection::vec(0u64..4, 0..3),
        // Mostly acked; the occasional pending txn must be ignored.
        0u32..100,
    )
        .prop_map(|(reads, mut writes, ack_roll)| {
            writes.sort_unstable();
            writes.dedup();
            SerialTxn { reads, writes, acked: ack_roll < 85 }
        })
}

/// Execute `txns` one at a time against a version-chain model and
/// record the resulting history: reads observe the current version,
/// writes install the successor. By construction the history has a
/// serial explanation — its own execution order.
fn record_serial(txns: &[SerialTxn]) -> Recorder {
    let r = Recorder::enabled();
    let mut versions = [0u64; 4];
    for (i, txn) in txns.iter().enumerate() {
        let t = 10 * (i as u64 + 1);
        let process = (i % 3) as u32 + 1;
        let op = r.invoke(
            process,
            SimTime::from_micros(t),
            OpData::Transfer { from: 0, to: 1, amount: 1 },
        );
        if !txn.acked {
            continue; // pending: the model never applies it
        }
        let reads = txn
            .reads
            .iter()
            .map(|&k| kv(0, k, versions[k as usize]))
            .collect();
        let writes = txn
            .writes
            .iter()
            .map(|&k| {
                versions[k as usize] += 1;
                kv(0, k, versions[k as usize])
            })
            .collect();
        r.ok(
            process,
            op,
            SimTime::from_micros(t + 1),
            OpData::Txn(TxnOps { reads, writes }),
        );
    }
    r
}

/// A faithful append/observe script over one list: appends in order,
/// observers that only ever advance through the prefix chain.
#[derive(Debug, Clone)]
struct AppendScript {
    appends: usize,
    /// Per observer: strictly non-decreasing prefix lengths.
    observers: Vec<Vec<usize>>,
}

fn append_script_strategy() -> impl Strategy<Value = AppendScript> {
    (1usize..12, prop::collection::vec(prop::collection::vec(0usize..13, 1..4), 1..3)).prop_map(
        |(appends, mut observers)| {
            for obs in &mut observers {
                for len in obs.iter_mut() {
                    *len = (*len).min(appends);
                }
                obs.sort_unstable(); // monotone views
            }
            AppendScript { appends, observers }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Any serially executed transaction schedule — including pending
    /// txns that never complete — passes the full checker suite.
    #[test]
    fn valid_serial_histories_are_clean(
        txns in prop::collection::vec(serial_txn_strategy(), 1..24)
    ) {
        let r = record_serial(&txns);
        let verdict = check_history(&r.history(), &CheckConfig::default());
        prop_assert!(verdict.is_clean(), "{}", verdict.render());
        let committed = txns.iter().filter(|t| t.acked).count() as u64;
        let serial = verdict
            .reports
            .iter()
            .find(|rep| rep.checker == "serializable");
        if committed > 0 {
            prop_assert_eq!(
                serial.expect("serial checker ran").ops_checked,
                committed
            );
        }
    }

    /// Faithful append-list executions — every observer walking forward
    /// through the same prefix chain, the final images fully drained —
    /// pass the append checker through the top-level entry point.
    #[test]
    fn valid_append_histories_are_clean(script in append_script_strategy()) {
        let r = Recorder::enabled();
        let full: Vec<u64> = (1..=script.appends as u64).collect();
        for (i, &v) in full.iter().enumerate() {
            append(&r, 1, 10 * (i as u64 + 1), 0, v);
        }
        for (o, obs) in script.observers.iter().enumerate() {
            for (j, &len) in obs.iter().enumerate() {
                read_list(
                    &r,
                    1_000 + o as u32,
                    500 + 10 * j as u64,
                    0,
                    Site::Backup,
                    &full[..len],
                );
            }
        }
        read_list(&r, 2_000, 900, 0, Site::Primary, &full);
        read_list(&r, 2_001, 910, 0, Site::BackupFinal, &full);
        let verdict = check_history(&r.history(), &CheckConfig::default());
        prop_assert!(verdict.is_clean(), "{}", verdict.render());
    }
}
