//! History export: JSON Lines, one self-describing object per record.
//!
//! Built by hand from integers — no floating point, no map iteration
//! over unordered containers — so the bytes are a pure function of the
//! recorded history and identical at any harness thread count.

use crate::record::{OpData, Record};

fn push_keyvers(field: &str, kvs: &[crate::record::KeyVer], out: &mut String) {
    out.push_str(&format!(",\"{field}\":["));
    for (i, kv) in kvs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"space\":{},\"key\":{},\"ver\":{}}}",
            kv.space, kv.key, kv.version
        ));
    }
    out.push(']');
}

fn push_u64s(field: &str, vs: &[u64], out: &mut String) {
    out.push_str(&format!(",\"{field}\":["));
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

fn push_data(data: &OpData, out: &mut String) {
    match data {
        OpData::Order {
            order_id,
            item,
            quantity,
        } => out.push_str(&format!(
            ",\"type\":\"order\",\"order_id\":{order_id},\"item\":{item},\"quantity\":{quantity}"
        )),
        OpData::Transfer { from, to, amount } => out.push_str(&format!(
            ",\"type\":\"transfer\",\"from\":{from},\"to\":{to},\"amount\":{amount}"
        )),
        OpData::Append { key, value } => out.push_str(&format!(
            ",\"type\":\"append\",\"key\":{key},\"value\":{value}"
        )),
        OpData::ReadBalances { site } => out.push_str(&format!(
            ",\"type\":\"read-balances\",\"site\":\"{}\"",
            site.label()
        )),
        OpData::ReadList { key, site } => out.push_str(&format!(
            ",\"type\":\"read-list\",\"key\":{key},\"site\":\"{}\"",
            site.label()
        )),
        OpData::ReadShop { site } => out.push_str(&format!(
            ",\"type\":\"read-shop\",\"site\":\"{}\"",
            site.label()
        )),
        OpData::Txn(ops) => {
            out.push_str(",\"type\":\"txn\"");
            push_keyvers("reads", &ops.reads, out);
            push_keyvers("writes", &ops.writes, out);
        }
        OpData::Balances { accounts, total } => out.push_str(&format!(
            ",\"type\":\"balances\",\"accounts\":{accounts},\"total\":{total}"
        )),
        OpData::List { key, values } => {
            out.push_str(&format!(",\"type\":\"list\",\"key\":{key}"));
            push_u64s("values", values, out);
        }
        OpData::Shop { orders, deltas } => {
            out.push_str(",\"type\":\"shop\"");
            push_u64s("orders", orders, out);
            out.push_str(",\"deltas\":[");
            for (i, (item, sold)) in deltas.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{item},{sold}]"));
            }
            out.push(']');
        }
        OpData::None => out.push_str(",\"type\":\"none\""),
    }
}

/// Render records as JSON Lines in emission order. Empty input yields
/// the empty string.
pub fn export_jsonl(records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&format!(
            "{{\"seq\":{},\"op\":{},\"proc\":{},\"t_ns\":{},\"phase\":\"{}\"",
            r.seq,
            r.op.0,
            r.process,
            r.t.as_nanos(),
            r.phase.label()
        ));
        push_data(&r.data, &mut out);
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::record::{OpData, Recorder, Site, TxnOps, KeyVer};
    use tsuru_sim::SimTime;

    #[test]
    fn jsonl_is_stable() {
        let r = Recorder::enabled();
        let op = r.invoke(
            2,
            SimTime::from_micros(5),
            OpData::Append { key: 1, value: 42 },
        );
        r.ok(
            2,
            op,
            SimTime::from_micros(9),
            OpData::Txn(TxnOps {
                reads: vec![KeyVer {
                    space: 4,
                    key: 1,
                    version: 0,
                }],
                writes: vec![KeyVer {
                    space: 4,
                    key: 1,
                    version: 1,
                }],
            }),
        );
        let read = r.invoke(
            1_000,
            SimTime::from_micros(20),
            OpData::ReadList {
                key: 1,
                site: Site::Backup,
            },
        );
        r.ok(
            1_000,
            read,
            SimTime::from_micros(20),
            OpData::List {
                key: 1,
                values: vec![42],
            },
        );
        let expect = concat!(
            "{\"seq\":0,\"op\":1,\"proc\":2,\"t_ns\":5000,\"phase\":\"invoke\",\"type\":\"append\",\"key\":1,\"value\":42}\n",
            "{\"seq\":1,\"op\":1,\"proc\":2,\"t_ns\":9000,\"phase\":\"ok\",\"type\":\"txn\",\"reads\":[{\"space\":4,\"key\":1,\"ver\":0}],\"writes\":[{\"space\":4,\"key\":1,\"ver\":1}]}\n",
            "{\"seq\":2,\"op\":2,\"proc\":1000,\"t_ns\":20000,\"phase\":\"invoke\",\"type\":\"read-list\",\"key\":1,\"site\":\"backup\"}\n",
            "{\"seq\":3,\"op\":2,\"proc\":1000,\"t_ns\":20000,\"phase\":\"ok\",\"type\":\"list\",\"key\":1,\"values\":[42]}\n",
        );
        assert_eq!(r.export_jsonl(), expect);
    }

    #[test]
    fn empty_history_exports_empty() {
        assert_eq!(Recorder::enabled().export_jsonl(), "");
        assert_eq!(Recorder::disabled().export_jsonl(), "");
    }
}
