//! Client-visible operation histories and the checkers that judge them.
//!
//! Every oracle built so far — the chaos auditor's six invariants, trace
//! spans, per-volume write tickets — judges *internal* state. This crate
//! judges what a **client observed**: a [`Recorder`] collects
//! invoke/ok/fail/info records (Jepsen's history model) into an
//! append-only arena, and a checker suite decides whether that history
//! is explainable by a correct system:
//!
//! * [`check::serial`] — serializability cycle detection over
//!   transactional histories: ww/wr/rw edges from per-key version
//!   chains, Tarjan SCC, G1c / lost-update classification.
//! * [`check::bank`] — a total-balance invariant: every observed
//!   snapshot of the accounts, on any site, must conserve the total.
//! * [`check::append`] — an elle-style append-list checker: per-key
//!   ordered appends must read as prefix-comparable lists everywhere,
//!   monotone per observer, with no acked append lost after the backup
//!   journal drains.
//! * [`check::shop`] — the e-commerce cross-database rule stated over
//!   raw client observations: an order visible in an image without its
//!   stock decrement is a client-visible collapse.
//!
//! Everything is deterministic: records carry sim-time stamps, ids are
//! allocated in emission order, exports are built by hand from integers
//! (no floats, no map iteration over unordered containers), so the
//! JSONL bytes and checker verdicts are a pure function of the seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
mod export;
mod record;

pub use check::{
    check_history, Anomaly, AnomalyKind, CheckConfig, CheckReport, Verdict,
};
pub use record::{
    process, space, History, OpData, OpId, Phase, Record, Recorder, Site,
    TxnOps, KeyVer,
};
