//! The op-history recorder: invoke/ok/fail/info records in an
//! append-only arena.
//!
//! A [`Recorder`] is a cheap cloneable handle, mirroring the telemetry
//! tracer: [`Recorder::disabled`] is a no-op — every method returns
//! immediately — so instrumented client paths cost one branch when
//! history recording is off. [`Recorder::enabled`] appends into a
//! shared arena; all clones of one handle build the same history.
//!
//! Op ids are allocated in emission order starting at 1, records carry
//! the sim time they describe, and the arena never reorders, so a
//! history is a pure function of the simulated run: same seed, same
//! bytes.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use tsuru_sim::SimTime;

/// Identifier of one logical operation within a history.
///
/// The invoke record allocates the id; its completion (ok / fail)
/// reuses it, which is how the checker pairs intent with outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u64);

impl OpId {
    /// The null id: emitted while recording was disabled.
    pub const NONE: OpId = OpId(0);

    /// True for [`OpId::NONE`].
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Which edge of an operation a [`Record`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// The client issued the operation. Until a completion record with
    /// the same op id appears, the operation is *pending*: it may or
    /// may not have taken effect, and the checkers must accept both.
    Invoke,
    /// The operation definitely took effect and the client saw the ack.
    Ok,
    /// The operation definitely did not take effect.
    Fail,
    /// An informational observation outside the invoke/complete
    /// protocol (e.g. an operator annotation).
    Info,
}

impl Phase {
    /// Stable lower-case label, used by the JSONL export.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Invoke => "invoke",
            Phase::Ok => "ok",
            Phase::Fail => "fail",
            Phase::Info => "info",
        }
    }
}

/// Where a read observation was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// The live primary (business) database: the freshest client view.
    Primary,
    /// A recovered backup image read mid-run, racing replication: must
    /// be a *prefix* of the primary history, but may lag arbitrarily.
    Backup,
    /// The recovered backup image after every fault healed and the
    /// journal fully drained: must match the primary exactly.
    BackupFinal,
}

impl Site {
    /// Stable lower-case label, used by the JSONL export.
    pub fn label(self) -> &'static str {
        match self {
            Site::Primary => "primary",
            Site::Backup => "backup",
            Site::BackupFinal => "backup-final",
        }
    }
}

/// One key read or written at a specific version.
///
/// Versions are per-key install counters (see
/// [`Recorder::install_version`]): version 0 is the initial state, and
/// each committed write bumps the counter by one. The serializability
/// checker reconstructs ww/wr/rw edges from these chains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct KeyVer {
    /// Key namespace (see [`space`]); disambiguates tables/databases.
    pub space: u32,
    /// Row key within the space.
    pub key: u64,
    /// Version read (the version that was current) or installed (the
    /// new version this write created).
    pub version: u64,
}

/// The read and write footprint of one committed transaction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TxnOps {
    /// Versions this transaction read.
    pub reads: Vec<KeyVer>,
    /// Versions this transaction installed.
    pub writes: Vec<KeyVer>,
}

/// Well-known key namespaces used by the workload drivers.
pub mod space {
    /// Stock rows in the stock database (`item → quantity`).
    pub const STOCK: u32 = 1;
    /// Order rows in the sales database (`order_id → order`).
    pub const ORDERS: u32 = 2;
    /// Account rows for the bank-transfer workload.
    pub const ACCOUNTS: u32 = 3;
    /// Per-key append lists for the append-list workload.
    pub const LISTS: u32 = 4;
}

/// Well-known process ids for non-client observers.
pub mod process {
    /// The analytics reader scanning recovered backup images mid-run.
    pub const BACKUP_READER: u32 = 1_000;
    /// The post-quiesce judge reading final primary state.
    pub const JUDGE: u32 = 1_001;
}

/// The payload of one record: the client's intent (on invoke) or the
/// observed outcome (on completion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpData {
    /// Invoke: place an order (the e-commerce workload).
    Order {
        /// Order id the client will write.
        order_id: u64,
        /// Item purchased.
        item: u64,
        /// Units purchased.
        quantity: u32,
    },
    /// Invoke: move `amount` between accounts (the bank workload).
    Transfer {
        /// Debited account.
        from: u64,
        /// Credited account.
        to: u64,
        /// Units moved.
        amount: u64,
    },
    /// Invoke: append `value` to the list at `key`.
    Append {
        /// List key.
        key: u64,
        /// Value appended; unique per key within a run.
        value: u64,
    },
    /// Invoke: read every account balance.
    ReadBalances {
        /// Where the read is served from.
        site: Site,
    },
    /// Invoke: read the list at `key`.
    ReadList {
        /// List key.
        key: u64,
        /// Where the read is served from.
        site: Site,
    },
    /// Invoke: scan orders and stock of one shop image.
    ReadShop {
        /// Where the read is served from.
        site: Site,
    },
    /// Completion: the transaction committed with this footprint.
    Txn(TxnOps),
    /// Completion of [`OpData::ReadBalances`].
    Balances {
        /// Number of account rows observed.
        accounts: u64,
        /// Sum of all balances observed.
        total: u64,
    },
    /// Completion of [`OpData::ReadList`].
    List {
        /// List key (repeated for self-contained records).
        key: u64,
        /// The observed list, in list order.
        values: Vec<u64>,
    },
    /// Completion of [`OpData::ReadShop`]: the raw observation the
    /// cross-database rule is checked against.
    Shop {
        /// Order ids visible in the image.
        orders: Vec<u64>,
        /// Per-item `(item, units_sold)` pairs: initial stock minus the
        /// observed quantity, i.e. the stock decrement visible in the
        /// image.
        deltas: Vec<(u64, u64)>,
    },
    /// No payload (e.g. a failed completion).
    None,
}

/// One entry in a recorded history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Global record index in emission order, from 0.
    pub seq: u64,
    /// The operation this record belongs to (completions reuse the id
    /// allocated by their invoke).
    pub op: OpId,
    /// The client (or observer, see [`process`]) that emitted it.
    pub process: u32,
    /// Sim time of the event.
    pub t: SimTime,
    /// Which edge of the operation this is.
    pub phase: Phase,
    /// Intent or observation payload.
    pub data: OpData,
}

/// Fixed chunk size of the record arena. Appends never move records
/// already stored, and a full history is still cheap to iterate.
const CHUNK: usize = 1024;

/// Append-only record storage: a list of fixed-capacity chunks, so a
/// push is O(1) and never relocates existing records.
#[derive(Debug, Default)]
struct Arena {
    chunks: Vec<Vec<Record>>,
    len: u64,
}

impl Arena {
    fn push(&mut self, r: Record) {
        if self
            .chunks
            .last()
            .map(|c| c.len() == CHUNK)
            .unwrap_or(true)
        {
            self.chunks.push(Vec::with_capacity(CHUNK));
        }
        self.chunks
            .last_mut()
            .expect("invariant: a chunk was pushed just above when full or empty")
            .push(r);
        self.len += 1;
    }

    fn iter(&self) -> impl Iterator<Item = &Record> {
        self.chunks.iter().flat_map(|c| c.iter())
    }
}

#[derive(Debug, Default)]
struct HistoryCore {
    arena: Arena,
    next_op: u64,
    /// Per-(space, key) install counters backing [`KeyVer`] chains.
    versions: BTreeMap<(u32, u64), u64>,
}

impl HistoryCore {
    fn push(&mut self, op: OpId, process: u32, t: SimTime, phase: Phase, data: OpData) {
        let seq = self.arena.len;
        self.arena.push(Record {
            seq,
            op,
            process,
            t,
            phase,
            data,
        });
    }

    fn alloc(&mut self) -> OpId {
        self.next_op += 1;
        OpId(self.next_op)
    }
}

/// A complete recorded history, flattened for the checkers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct History {
    /// All records in emission order.
    pub records: Vec<Record>,
}

impl History {
    /// Build a history directly from records (used by fixtures); seq
    /// numbers are rewritten to emission order.
    pub fn from_records(records: Vec<Record>) -> Self {
        let mut records = records;
        for (i, r) in records.iter_mut().enumerate() {
            r.seq = i as u64;
        }
        History { records }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The invoke record of `op`, if any.
    pub fn invoke_of(&self, op: OpId) -> Option<&Record> {
        self.records
            .iter()
            .find(|r| r.op == op && r.phase == Phase::Invoke)
    }

    /// Render as JSON Lines (see [`crate::export`]).
    pub fn export_jsonl(&self) -> String {
        crate::export::export_jsonl(&self.records)
    }
}

/// Cheap cloneable handle onto one recorded history (or a no-op).
#[derive(Debug, Clone, Default)]
pub struct Recorder(Option<Rc<RefCell<HistoryCore>>>);

impl Recorder {
    /// A recorder that drops everything: one branch per call.
    pub fn disabled() -> Self {
        Recorder(None)
    }

    /// A recorder that appends into a fresh shared arena.
    pub fn enabled() -> Self {
        Recorder(Some(Rc::new(RefCell::new(HistoryCore::default()))))
    }

    /// True when records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record an invoke: the client issued `data` at `t`. Returns the
    /// op id its completion must carry ([`OpId::NONE`] when disabled).
    pub fn invoke(&self, process: u32, t: SimTime, data: OpData) -> OpId {
        match &self.0 {
            None => OpId::NONE,
            Some(core) => {
                let mut core = core.borrow_mut();
                let op = core.alloc();
                core.push(op, process, t, Phase::Invoke, data);
                op
            }
        }
    }

    /// Record a successful completion of `op`.
    pub fn ok(&self, process: u32, op: OpId, t: SimTime, data: OpData) {
        if let Some(core) = &self.0 {
            core.borrow_mut().push(op, process, t, Phase::Ok, data);
        }
    }

    /// Record a definite failure of `op` (the op did not take effect).
    pub fn fail(&self, process: u32, op: OpId, t: SimTime, data: OpData) {
        if let Some(core) = &self.0 {
            core.borrow_mut().push(op, process, t, Phase::Fail, data);
        }
    }

    /// Record a free-standing observation outside the invoke/complete
    /// protocol.
    pub fn info(&self, process: u32, t: SimTime, data: OpData) -> OpId {
        match &self.0 {
            None => OpId::NONE,
            Some(core) => {
                let mut core = core.borrow_mut();
                let op = core.alloc();
                core.push(op, process, t, Phase::Info, data);
                op
            }
        }
    }

    /// Current version of `(space, key)` — what a read observes. 0 when
    /// the key was never written (the initial state) or when disabled.
    pub fn read_version(&self, space: u32, key: u64) -> u64 {
        match &self.0 {
            None => 0,
            Some(core) => *core
                .borrow()
                .versions
                .get(&(space, key))
                .unwrap_or(&0),
        }
    }

    /// Bump and return the version installed by a committed write to
    /// `(space, key)`. Call at the synchronous commit point so the
    /// version chain follows the database's serialization order.
    pub fn install_version(&self, space: u32, key: u64) -> u64 {
        match &self.0 {
            None => 0,
            Some(core) => {
                let mut core = core.borrow_mut();
                let v = core.versions.entry((space, key)).or_insert(0);
                *v += 1;
                *v
            }
        }
    }

    /// Number of records kept so far.
    pub fn len(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.borrow().arena.len)
    }

    /// True when no records were kept (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the history recorded so far.
    pub fn history(&self) -> History {
        match &self.0 {
            None => History::default(),
            Some(core) => History {
                records: core.borrow().arena.iter().cloned().collect(),
            },
        }
    }

    /// Render the history recorded so far as JSON Lines.
    pub fn export_jsonl(&self) -> String {
        self.history().export_jsonl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        let op = r.invoke(1, SimTime::ZERO, OpData::ReadBalances { site: Site::Primary });
        assert!(op.is_none());
        r.ok(1, op, SimTime::ZERO, OpData::None);
        assert_eq!(r.read_version(space::STOCK, 7), 0);
        assert_eq!(r.install_version(space::STOCK, 7), 0);
        assert_eq!(r.len(), 0);
        assert!(r.history().is_empty());
    }

    #[test]
    fn clones_share_one_arena() {
        let r = Recorder::enabled();
        let r2 = r.clone();
        let op = r.invoke(3, SimTime::from_micros(1), OpData::Append { key: 1, value: 10 });
        r2.ok(3, op, SimTime::from_micros(2), OpData::Txn(TxnOps::default()));
        let h = r.history();
        assert_eq!(h.len(), 2);
        assert_eq!(h.records[0].op, h.records[1].op);
        assert_eq!(h.records[0].phase, Phase::Invoke);
        assert_eq!(h.records[1].phase, Phase::Ok);
        assert_eq!(h.records[0].seq, 0);
        assert_eq!(h.records[1].seq, 1);
    }

    #[test]
    fn version_chains_count_per_key() {
        let r = Recorder::enabled();
        assert_eq!(r.read_version(space::LISTS, 5), 0);
        assert_eq!(r.install_version(space::LISTS, 5), 1);
        assert_eq!(r.install_version(space::LISTS, 5), 2);
        assert_eq!(r.install_version(space::LISTS, 6), 1);
        assert_eq!(r.read_version(space::LISTS, 5), 2);
        assert_eq!(r.read_version(space::STOCK, 5), 0, "spaces are disjoint");
    }

    #[test]
    fn arena_spans_chunks_in_order() {
        let r = Recorder::enabled();
        for i in 0..(CHUNK as u64 * 2 + 10) {
            r.info(0, SimTime::from_nanos(i), OpData::None);
        }
        let h = r.history();
        assert_eq!(h.len(), CHUNK * 2 + 10);
        for (i, rec) in h.records.iter().enumerate() {
            assert_eq!(rec.seq, i as u64);
            assert_eq!(rec.op, OpId(i as u64 + 1));
        }
    }
}
