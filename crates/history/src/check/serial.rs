//! Serializability cycle detection over transactional histories.
//!
//! Committed transactions declare their footprint as per-key version
//! chains ([`crate::TxnOps`]): a read observes the version that was
//! current, a write installs the next one. From those chains the
//! checker derives the classic dependency edges —
//!
//! * **ww** — writer of version *v* → writer of the next version,
//! * **wr** — writer of version *v* → every reader of *v*,
//! * **rw** — reader of version *v* → writer of the next version
//!   (the anti-dependency),
//!
//! — and runs Tarjan's SCC over the transaction graph. Any strongly
//! connected component larger than one transaction is a dependency
//! cycle no serial order can explain. Cycles made only of ww/wr edges
//! are Adya's G1c (circular information flow); cycles where two
//! members read the same version of a key they both wrote are lost
//! updates; anything else is reported as plain non-serializability.
//!
//! Pending transactions (invoke without completion) are excluded: the
//! system never acked them, so the client has no claim about them.

use std::collections::BTreeMap;

use crate::check::{Anomaly, AnomalyKind, CheckReport};
use crate::record::{History, OpData, OpId, Phase, TxnOps};

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EdgeKind {
    Ww,
    Wr,
    Rw,
}

impl EdgeKind {
    fn label(self) -> &'static str {
        match self {
            EdgeKind::Ww => "ww",
            EdgeKind::Wr => "wr",
            EdgeKind::Rw => "rw",
        }
    }
}

/// Iterative Tarjan SCC; returns components in discovery order. Node
/// ids are dense indices into the transaction list.
fn tarjan(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut index = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs = Vec::new();
    // Explicit DFS frames: (node, next-edge-offset).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != u32::MAX {
            continue;
        }
        frames.push((root, 0));
        while !frames.is_empty() {
            let (v, ei) = *frames.last().expect("frame exists");
            if ei == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(ei) {
                frames.last_mut().expect("frame exists").1 += 1;
                if index[w] == u32::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    sccs
}

/// Check the committed transactions of `h` for dependency cycles.
pub fn check(h: &History) -> CheckReport {
    // Committed txns: op id → footprint, in invoke order.
    let mut txns: Vec<(OpId, TxnOps)> = Vec::new();
    for r in &h.records {
        if r.phase == Phase::Ok {
            if let OpData::Txn(ops) = &r.data {
                txns.push((r.op, ops.clone()));
            }
        }
    }
    let mut anomalies = Vec::new();

    // Version chains: who installed / read each (space, key, version).
    let mut writer: BTreeMap<(u32, u64, u64), usize> = BTreeMap::new();
    let mut readers: BTreeMap<(u32, u64, u64), Vec<usize>> = BTreeMap::new();
    let mut written: BTreeMap<(u32, u64), Vec<u64>> = BTreeMap::new();
    for (i, (op, ops)) in txns.iter().enumerate() {
        for w in &ops.writes {
            let slot = (w.space, w.key, w.version);
            if let Some(&prev) = writer.get(&slot) {
                anomalies.push(Anomaly {
                    kind: AnomalyKind::ConflictingWrite,
                    detail: format!(
                        "two txns installed space={} key={} version={}",
                        w.space, w.key, w.version
                    ),
                    ops: vec![txns[prev].0, *op],
                });
            } else {
                writer.insert(slot, i);
                written.entry((w.space, w.key)).or_default().push(w.version);
            }
        }
        for rd in &ops.reads {
            readers.entry((rd.space, rd.key, rd.version)).or_default().push(i);
        }
    }
    for versions in written.values_mut() {
        versions.sort_unstable();
    }

    // Dependency edges, deduplicated, self-edges dropped.
    let n = txns.len();
    let mut edges: BTreeMap<(usize, usize), Vec<EdgeKind>> = BTreeMap::new();
    let add = |from: usize, to: usize, kind: EdgeKind, edges: &mut BTreeMap<(usize, usize), Vec<EdgeKind>>| {
        if from == to {
            return;
        }
        let kinds = edges.entry((from, to)).or_default();
        if !kinds.contains(&kind) {
            kinds.push(kind);
        }
    };
    for (&(space, key), versions) in &written {
        for pair in versions.windows(2) {
            let (a, b) = (
                writer[&(space, key, pair[0])],
                writer[&(space, key, pair[1])],
            );
            add(a, b, EdgeKind::Ww, &mut edges);
        }
        for &v in versions {
            let w = writer[&(space, key, v)];
            if let Some(rs) = readers.get(&(space, key, v)) {
                for &r in rs {
                    add(w, r, EdgeKind::Wr, &mut edges);
                }
            }
            // Anti-dependency: whoever read the version *before* v must
            // precede v's writer in any serial order.
            let prev = versions
                .iter()
                .rev()
                .find(|&&p| p < v)
                .copied()
                .unwrap_or(0);
            if let Some(rs) = readers.get(&(space, key, prev)) {
                for &r in rs {
                    add(r, w, EdgeKind::Rw, &mut edges);
                }
            }
        }
    }

    let mut adj = vec![Vec::new(); n];
    for &(from, to) in edges.keys() {
        adj[from].push(to);
    }

    for scc in tarjan(n, &adj) {
        if scc.len() < 2 {
            continue;
        }
        let mut members = scc.clone();
        members.sort_unstable();
        let in_scc = |i: usize| members.binary_search(&i).is_ok();

        // Edge kinds and keys internal to the cycle.
        let mut kinds: Vec<EdgeKind> = Vec::new();
        for (&(from, to), ks) in &edges {
            if in_scc(from) && in_scc(to) {
                for k in ks {
                    if !kinds.contains(k) {
                        kinds.push(*k);
                    }
                }
            }
        }
        kinds.sort_unstable();
        let pure_info_flow = kinds.iter().all(|k| *k != EdgeKind::Rw);

        // Lost update: two cycle members read the same version of a key
        // they both also wrote.
        let mut lost_update = false;
        'outer: for (&(space, key, _v), rs) in &readers {
            let contenders: Vec<usize> = rs
                .iter()
                .copied()
                .filter(|&r| {
                    in_scc(r)
                        && txns[r]
                            .1
                            .writes
                            .iter()
                            .any(|w| w.space == space && w.key == key)
                })
                .collect();
            if contenders.len() >= 2 {
                lost_update = true;
                break 'outer;
            }
        }

        let kind = if pure_info_flow {
            AnomalyKind::WriteCycle
        } else if lost_update {
            AnomalyKind::LostUpdate
        } else {
            AnomalyKind::NonSerializable
        };
        let kind_labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
        let mut ops: Vec<OpId> = members.iter().map(|&i| txns[i].0).collect();
        ops.sort_unstable();
        anomalies.push(Anomaly {
            kind,
            detail: format!(
                "dependency cycle of {} committed txns (edges: {})",
                members.len(),
                kind_labels.join(",")
            ),
            ops,
        });
    }

    // Deterministic report order: by first op id in the anomaly.
    anomalies.sort_by_key(|a| (a.ops.first().copied().unwrap_or(OpId::NONE), a.kind.label()));
    CheckReport {
        checker: "serializable",
        ops_checked: n as u64,
        anomalies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{KeyVer, OpData, Recorder, TxnOps};
    use tsuru_sim::SimTime;

    fn kv(space: u32, key: u64, version: u64) -> KeyVer {
        KeyVer { space, key, version }
    }

    fn commit(r: &Recorder, process: u32, t_us: u64, reads: Vec<KeyVer>, writes: Vec<KeyVer>) {
        let op = r.invoke(
            process,
            SimTime::from_micros(t_us),
            OpData::Transfer { from: 0, to: 1, amount: 1 },
        );
        r.ok(
            process,
            op,
            SimTime::from_micros(t_us + 1),
            OpData::Txn(TxnOps { reads, writes }),
        );
    }

    #[test]
    fn serial_chain_is_clean() {
        let r = Recorder::enabled();
        // T1 reads v0 writes v1; T2 reads v1 writes v2; a reader of v2.
        commit(&r, 1, 10, vec![kv(3, 7, 0)], vec![kv(3, 7, 1)]);
        commit(&r, 2, 20, vec![kv(3, 7, 1)], vec![kv(3, 7, 2)]);
        commit(&r, 1, 30, vec![kv(3, 7, 2)], vec![kv(3, 8, 1)]);
        let report = check(&r.history());
        assert!(report.is_clean(), "{:?}", report.anomalies);
        assert_eq!(report.ops_checked, 3);
    }

    #[test]
    fn write_cycle_is_g1c() {
        let r = Recorder::enabled();
        // T1 writes x1 and reads y1 (written by T2); T2 writes y1 and
        // reads x1 (written by T1): wr edges both ways.
        commit(&r, 1, 10, vec![kv(1, 2, 1)], vec![kv(1, 1, 1)]);
        commit(&r, 2, 11, vec![kv(1, 1, 1)], vec![kv(1, 2, 1)]);
        let report = check(&r.history());
        assert_eq!(report.anomalies.len(), 1, "{:?}", report.anomalies);
        assert_eq!(report.anomalies[0].kind, AnomalyKind::WriteCycle);
        assert_eq!(report.anomalies[0].ops.len(), 2);
    }

    #[test]
    fn lost_update_is_classified() {
        let r = Recorder::enabled();
        // Both read v0 of the same key, both write it: classic lost
        // update (rw edges both ways through versions 1 and 2).
        commit(&r, 1, 10, vec![kv(3, 5, 0)], vec![kv(3, 5, 1)]);
        commit(&r, 2, 11, vec![kv(3, 5, 0)], vec![kv(3, 5, 2)]);
        let report = check(&r.history());
        assert_eq!(report.anomalies.len(), 1, "{:?}", report.anomalies);
        assert_eq!(report.anomalies[0].kind, AnomalyKind::LostUpdate);
    }

    #[test]
    fn conflicting_installs_are_flagged() {
        let r = Recorder::enabled();
        commit(&r, 1, 10, vec![], vec![kv(1, 1, 1)]);
        commit(&r, 2, 11, vec![], vec![kv(1, 1, 1)]);
        let report = check(&r.history());
        assert!(report
            .anomalies
            .iter()
            .any(|a| a.kind == AnomalyKind::ConflictingWrite));
    }

    #[test]
    fn pending_txns_are_ignored() {
        let r = Recorder::enabled();
        // A pending (unacked) txn that would close a cycle must not.
        commit(&r, 1, 10, vec![kv(1, 2, 1)], vec![kv(1, 1, 1)]);
        r.invoke(2, SimTime::from_micros(11), OpData::Transfer { from: 0, to: 1, amount: 1 });
        let report = check(&r.history());
        assert!(report.is_clean(), "{:?}", report.anomalies);
        assert_eq!(report.ops_checked, 1);
    }

    #[test]
    fn long_chain_does_not_overflow() {
        let r = Recorder::enabled();
        for v in 0..5_000u64 {
            commit(&r, 1, 10 + v, vec![kv(1, 1, v)], vec![kv(1, 1, v + 1)]);
        }
        let report = check(&r.history());
        assert!(report.is_clean());
        assert_eq!(report.ops_checked, 5_000);
    }
}
