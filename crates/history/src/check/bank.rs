//! The total-balance invariant: money moves, it is never created or
//! destroyed.
//!
//! Every acked [`OpData::ReadBalances`] observation — whether served
//! from the live primary, a mid-run recovered backup image, or the
//! fully drained backup — must show the same total. A transactional
//! backup image taken at *any* write-order-faithful prefix conserves
//! the total because each transfer is atomic; a torn image (naive
//! per-volume replication mid-fault) splits a transfer across the cut
//! and the total drifts. This is the paper's consistency-group claim
//! restated as a client-visible property.

use crate::check::{Anomaly, AnomalyKind, CheckReport};
use crate::record::{History, OpData, Phase};

/// Check every balance observation in `h` against the expected total.
///
/// When `expected_total` is `None` the first observation defines it
/// (the seeded state is the baseline).
pub fn check(h: &History, expected_total: Option<u64>) -> CheckReport {
    let mut anomalies = Vec::new();
    let mut expected = expected_total;
    let mut transfers = 0u64;
    let mut reads = 0u64;

    for r in &h.records {
        match (&r.phase, &r.data) {
            (Phase::Ok, OpData::Txn(_)) => {}
            (Phase::Invoke, OpData::Transfer { .. }) => transfers += 1,
            (Phase::Ok, OpData::Balances { accounts, total })
            | (Phase::Info, OpData::Balances { accounts, total }) => {
                reads += 1;
                // The matching invoke names the site for the detail line.
                let site = h.invoke_of(r.op).map(|inv| match &inv.data {
                    OpData::ReadBalances { site } => site.label(),
                    _ => "unknown",
                });
                match expected {
                    None => expected = Some(*total),
                    Some(want) if *total != want => anomalies.push(Anomaly {
                        kind: AnomalyKind::BalanceViolation,
                        detail: format!(
                            "observed total {} over {} accounts on {}, expected {}",
                            total,
                            accounts,
                            site.unwrap_or("unknown"),
                            want
                        ),
                        ops: vec![r.op],
                    }),
                    Some(_) => {}
                }
            }
            _ => {}
        }
    }

    CheckReport {
        checker: "bank",
        ops_checked: transfers + reads,
        anomalies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{OpData, Recorder, Site};
    use tsuru_sim::SimTime;

    fn read(r: &Recorder, site: Site, t_us: u64, accounts: u64, total: u64) {
        let op = r.invoke(9, SimTime::from_micros(t_us), OpData::ReadBalances { site });
        r.ok(
            9,
            op,
            SimTime::from_micros(t_us),
            OpData::Balances { accounts, total },
        );
    }

    #[test]
    fn conserved_totals_pass() {
        let r = Recorder::enabled();
        read(&r, Site::Primary, 1, 10, 1_000);
        read(&r, Site::Backup, 2, 10, 1_000);
        read(&r, Site::BackupFinal, 3, 10, 1_000);
        let report = check(&r.history(), Some(1_000));
        assert!(report.is_clean(), "{:?}", report.anomalies);
        assert_eq!(report.ops_checked, 3);
    }

    #[test]
    fn drifted_total_is_flagged_with_the_offending_read() {
        let r = Recorder::enabled();
        read(&r, Site::Primary, 1, 10, 1_000);
        read(&r, Site::Backup, 2, 10, 993);
        let report = check(&r.history(), Some(1_000));
        assert_eq!(report.anomalies.len(), 1);
        let a = &report.anomalies[0];
        assert_eq!(a.kind, AnomalyKind::BalanceViolation);
        assert!(a.detail.contains("993"), "{}", a.detail);
        assert!(a.detail.contains("backup"), "{}", a.detail);
        assert_eq!(a.ops.len(), 1);
    }

    #[test]
    fn first_read_defines_the_total_when_unconfigured() {
        let r = Recorder::enabled();
        read(&r, Site::Primary, 1, 4, 400);
        read(&r, Site::Backup, 2, 4, 390);
        let report = check(&r.history(), None);
        assert_eq!(report.anomalies.len(), 1);
    }
}
