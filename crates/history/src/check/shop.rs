//! The e-commerce cross-database rule, stated over raw client
//! observations.
//!
//! The shop commits each order as two transactions — stock decrement
//! first, then the order row — in *different databases on different
//! volumes*. An image (mid-run backup read, or the fully drained
//! backup) is client-consistent when every order visible in it is
//! covered by a visible stock decrement: for each item, the units sold
//! by visible orders never exceed the stock decrement observed in the
//! same image. A torn per-volume image shows the order without the
//! decrement — the phantom sale the paper's consistency group exists
//! to prevent.

use std::collections::BTreeMap;

use crate::check::{acked, Anomaly, AnomalyKind, CheckReport};
use crate::record::{History, OpData, OpId, Phase, Site};

/// Check every shop-image observation in `h`.
pub fn check(h: &History) -> CheckReport {
    // order_id → (item, quantity, invoke op).
    let mut orders: BTreeMap<u64, (u64, u32, OpId)> = BTreeMap::new();
    let mut ops_checked = 0u64;
    for r in &h.records {
        if r.phase == Phase::Invoke {
            if let OpData::Order {
                order_id,
                item,
                quantity,
            } = r.data
            {
                ops_checked += 1;
                orders.insert(order_id, (item, quantity, r.op));
            }
        }
    }

    let mut anomalies = Vec::new();
    let mut final_reads: Vec<(Site, OpId, Vec<u64>)> = Vec::new();

    for r in &h.records {
        if !matches!(r.phase, Phase::Ok | Phase::Info) {
            continue;
        }
        let OpData::Shop { orders: visible, deltas } = &r.data else {
            continue;
        };
        ops_checked += 1;
        let site = h.invoke_of(r.op).and_then(|inv| match &inv.data {
            OpData::ReadShop { site } => Some(*site),
            _ => None,
        });

        // Units sold per item according to the orders visible in this
        // image; unknown order ids are phantoms.
        let mut sold: BTreeMap<u64, u64> = BTreeMap::new();
        let mut culprits: BTreeMap<u64, Vec<OpId>> = BTreeMap::new();
        for oid in visible {
            match orders.get(oid) {
                None => anomalies.push(Anomaly {
                    kind: AnomalyKind::PhantomValue,
                    detail: format!("image shows order {oid} no client ever placed"),
                    ops: vec![r.op],
                }),
                Some(&(item, quantity, op)) => {
                    *sold.entry(item).or_insert(0) += quantity as u64;
                    culprits.entry(item).or_default().push(op);
                }
            }
        }
        let observed: BTreeMap<u64, u64> = deltas.iter().copied().collect();
        for (&item, &units) in &sold {
            let delta = observed.get(&item).copied().unwrap_or(0);
            if units > delta {
                let mut ops = culprits.remove(&item).unwrap_or_default();
                ops.push(r.op);
                ops.sort_unstable();
                ops.dedup();
                anomalies.push(Anomaly {
                    kind: AnomalyKind::OrderWithoutStock,
                    detail: format!(
                        "item {item}: image shows {units} units ordered but only \
                         {delta} units of stock decrement"
                    ),
                    ops,
                });
            }
        }

        if let Some(site @ (Site::Primary | Site::BackupFinal)) = site {
            final_reads.push((site, r.op, visible.clone()));
        }
    }

    // After the journal drains, no acked order may be missing from the
    // last observation of either the primary or the backup image.
    for (label, site) in [("primary", Site::Primary), ("backup", Site::BackupFinal)] {
        let last = final_reads.iter().rev().find(|(s, _, _)| *s == site);
        let Some((_, read_op, visible)) = last else { continue };
        let mut missing: Vec<OpId> = Vec::new();
        let mut ids: Vec<u64> = Vec::new();
        for (&oid, &(_, _, op)) in &orders {
            if acked(h, op) && !visible.contains(&oid) {
                missing.push(op);
                ids.push(oid);
            }
        }
        if !missing.is_empty() {
            missing.push(*read_op);
            missing.sort_unstable();
            let ids: Vec<String> = ids.iter().map(|v| v.to_string()).collect();
            anomalies.push(Anomaly {
                kind: AnomalyKind::LostOp,
                detail: format!(
                    "acked order(s) [{}] missing from final {label} read",
                    ids.join(",")
                ),
                ops: missing,
            });
        }
    }

    anomalies.sort_by_key(|a| (a.ops.first().copied().unwrap_or(OpId::NONE), a.kind.label()));
    CheckReport {
        checker: "shop",
        ops_checked,
        anomalies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Recorder, TxnOps};
    use tsuru_sim::SimTime;

    fn order(r: &Recorder, t_us: u64, order_id: u64, item: u64, quantity: u32, ack: bool) {
        let op = r.invoke(
            1,
            SimTime::from_micros(t_us),
            OpData::Order {
                order_id,
                item,
                quantity,
            },
        );
        if ack {
            r.ok(
                1,
                op,
                SimTime::from_micros(t_us + 1),
                OpData::Txn(TxnOps::default()),
            );
        }
    }

    fn scan(r: &Recorder, t_us: u64, site: Site, orders: &[u64], deltas: &[(u64, u64)]) {
        let op = r.invoke(1_000, SimTime::from_micros(t_us), OpData::ReadShop { site });
        r.ok(
            1_000,
            op,
            SimTime::from_micros(t_us),
            OpData::Shop {
                orders: orders.to_vec(),
                deltas: deltas.to_vec(),
            },
        );
    }

    #[test]
    fn covered_orders_pass() {
        let r = Recorder::enabled();
        order(&r, 10, 1, 5, 2, true);
        order(&r, 20, 2, 5, 1, true);
        // Mid-run backup image: only order 1 replicated, but its stock
        // decrement (and possibly more) is visible — a faithful prefix.
        scan(&r, 30, Site::Backup, &[1], &[(5, 3)]);
        scan(&r, 40, Site::Primary, &[1, 2], &[(5, 3)]);
        scan(&r, 50, Site::BackupFinal, &[1, 2], &[(5, 3)]);
        let report = check(&r.history());
        assert!(report.is_clean(), "{:?}", report.anomalies);
        assert_eq!(report.ops_checked, 5);
    }

    #[test]
    fn order_without_stock_is_the_collapse() {
        let r = Recorder::enabled();
        order(&r, 10, 1, 5, 2, true);
        // Torn image: the order arrived, the stock decrement did not.
        scan(&r, 30, Site::Backup, &[1], &[(5, 0)]);
        let report = check(&r.history());
        assert_eq!(report.anomalies.len(), 1, "{:?}", report.anomalies);
        let a = &report.anomalies[0];
        assert_eq!(a.kind, AnomalyKind::OrderWithoutStock);
        assert_eq!(a.ops.len(), 2, "order op + scan op");
    }

    #[test]
    fn lost_acked_order_after_drain() {
        let r = Recorder::enabled();
        order(&r, 10, 1, 5, 1, true);
        order(&r, 20, 2, 6, 1, true);
        scan(&r, 40, Site::Primary, &[1, 2], &[(5, 1), (6, 1)]);
        scan(&r, 50, Site::BackupFinal, &[1], &[(5, 1)]);
        let report = check(&r.history());
        assert!(report
            .anomalies
            .iter()
            .any(|a| a.kind == AnomalyKind::LostOp && a.detail.contains("[2]")));
    }

    #[test]
    fn phantom_orders_are_flagged() {
        let r = Recorder::enabled();
        scan(&r, 30, Site::Backup, &[77], &[]);
        let report = check(&r.history());
        assert_eq!(report.anomalies[0].kind, AnomalyKind::PhantomValue);
    }
}
