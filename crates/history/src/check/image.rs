//! The image-readability checker: every attempted observation of an
//! image must succeed.
//!
//! A reader records [`Phase::Fail`] against a `ReadShop` /
//! `ReadBalances` / `ReadList` invoke when it mounted an image that
//! could not crash-recover. For a consistency-group backup this must
//! never happen while the backup array itself is healthy — the image
//! is crash-consistent at *every* instant — so a failed observation is
//! the strongest client-visible form of the collapse: the backup is
//! not merely behind, it is unusable.

use std::collections::BTreeMap;

use crate::check::{Anomaly, AnomalyKind, CheckReport};
use crate::record::{History, OpData, OpId, Phase, Site};

/// Check every image observation in `h` for outright failures.
pub fn check(h: &History) -> CheckReport {
    // op → site of the attempted observation.
    let mut observations: BTreeMap<OpId, Site> = BTreeMap::new();
    let mut ops_checked = 0u64;
    for r in &h.records {
        if r.phase != Phase::Invoke {
            continue;
        }
        let site = match &r.data {
            OpData::ReadShop { site } => *site,
            OpData::ReadBalances { site } => *site,
            OpData::ReadList { site, .. } => *site,
            _ => continue,
        };
        ops_checked += 1;
        observations.insert(r.op, site);
    }

    let mut anomalies = Vec::new();
    for r in &h.records {
        if r.phase != Phase::Fail {
            continue;
        }
        if let Some(&site) = observations.get(&r.op) {
            anomalies.push(Anomaly {
                kind: AnomalyKind::UnreadableImage,
                detail: format!(
                    "{} image observation failed: image did not crash-recover",
                    site.label()
                ),
                ops: vec![r.op],
            });
        }
    }

    anomalies.sort_by_key(|a| a.ops.first().copied().unwrap_or(OpId::NONE));
    CheckReport {
        checker: "image",
        ops_checked,
        anomalies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsuru_sim::SimTime;

    use crate::record::Recorder;

    #[test]
    fn successful_observations_pass() {
        let r = Recorder::enabled();
        let op = r.invoke(
            1_000,
            SimTime::from_micros(10),
            OpData::ReadList {
                key: 0,
                site: Site::Backup,
            },
        );
        r.ok(
            1_000,
            op,
            SimTime::from_micros(10),
            OpData::List {
                key: 0,
                values: vec![],
            },
        );
        let report = check(&r.history());
        assert!(report.is_clean());
        assert_eq!(report.ops_checked, 1);
    }

    #[test]
    fn failed_observation_is_an_unreadable_image() {
        let r = Recorder::enabled();
        let op = r.invoke(
            1_000,
            SimTime::from_micros(10),
            OpData::ReadShop { site: Site::Backup },
        );
        r.fail(1_000, op, SimTime::from_micros(11), OpData::None);
        let report = check(&r.history());
        assert_eq!(report.anomalies.len(), 1);
        let a = &report.anomalies[0];
        assert_eq!(a.kind, AnomalyKind::UnreadableImage);
        assert!(a.detail.contains("backup"), "{}", a.detail);
        assert_eq!(a.ops, vec![op]);
    }

    #[test]
    fn failed_writes_are_not_image_failures() {
        let r = Recorder::enabled();
        let op = r.invoke(
            1,
            SimTime::from_micros(10),
            OpData::Append { key: 0, value: 1 },
        );
        r.fail(1, op, SimTime::from_micros(11), OpData::None);
        assert!(check(&r.history()).is_clean());
    }
}
