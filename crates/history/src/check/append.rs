//! The elle-style append-list checker: per-key ordered appends must
//! read consistently everywhere, forever.
//!
//! The append-list workload is the sharpest consistency probe we have:
//! each client appends unique values to per-key lists, while readers —
//! live clients, a mid-run analytics scan of the recovered backup
//! image, and a final post-drain scan — observe the lists. A correct
//! system guarantees, per key:
//!
//! * every observed list contains only values someone appended, each
//!   at most once (**no phantoms, no duplicates**);
//! * all observed lists are pairwise **prefix-comparable** — a single
//!   append order exists, and every observer saw a prefix of it;
//! * each observer's view is **monotone** — no list ever shrinks or
//!   rewinds for the same process (a stale backup image re-read after
//!   a fresher one is client-visible time travel);
//! * after the journal drains, **no acked append is lost**: the final
//!   backup image equals the final primary state.

use std::collections::BTreeMap;

use crate::check::{acked, Anomaly, AnomalyKind, CheckReport};
use crate::record::{History, OpData, OpId, Phase, Site};

struct Read {
    op: OpId,
    process: u32,
    site: Option<Site>,
    values: Vec<u64>,
}

/// Check every append-list key observed in `h`.
pub fn check(h: &History) -> CheckReport {
    // Per key: appended values (value → append op), and reads in
    // record order.
    let mut appends: BTreeMap<u64, BTreeMap<u64, OpId>> = BTreeMap::new();
    let mut reads: BTreeMap<u64, Vec<Read>> = BTreeMap::new();
    let mut ops_checked = 0u64;

    for r in &h.records {
        match (&r.phase, &r.data) {
            (Phase::Invoke, OpData::Append { key, value }) => {
                ops_checked += 1;
                appends.entry(*key).or_default().insert(*value, r.op);
            }
            (Phase::Ok, OpData::List { key, values })
            | (Phase::Info, OpData::List { key, values }) => {
                ops_checked += 1;
                let site = h.invoke_of(r.op).and_then(|inv| match &inv.data {
                    OpData::ReadList { site, .. } => Some(*site),
                    _ => None,
                });
                reads.entry(*key).or_default().push(Read {
                    op: r.op,
                    process: r.process,
                    site,
                    values: values.clone(),
                });
            }
            _ => {}
        }
    }

    let mut anomalies = Vec::new();
    let empty = BTreeMap::new();

    for (&key, key_reads) in &reads {
        let invoked = appends.get(&key).unwrap_or(&empty);

        // Phantoms and duplicates, one anomaly per offending read.
        for rd in key_reads {
            let mut seen = BTreeMap::new();
            for &v in &rd.values {
                if !invoked.contains_key(&v) {
                    anomalies.push(Anomaly {
                        kind: AnomalyKind::PhantomValue,
                        detail: format!("key {key}: read observed value {v} never appended"),
                        ops: vec![rd.op],
                    });
                }
                if *seen.entry(v).or_insert(0u32) == 1 {
                    anomalies.push(Anomaly {
                        kind: AnomalyKind::DuplicateValue,
                        detail: format!("key {key}: value {v} appears twice in one read"),
                        ops: vec![rd.op],
                    });
                }
                *seen.get_mut(&v).expect("just inserted") += 1;
            }
        }

        // Prefix comparability: sorted by length, each read must be a
        // prefix of the next longer one (prefix order is transitive,
        // so consecutive checks cover every pair).
        let mut by_len: Vec<&Read> = key_reads.iter().collect();
        by_len.sort_by_key(|r| (r.values.len(), r.op));
        for pair in by_len.windows(2) {
            let (short, long) = (pair[0], pair[1]);
            if long.values[..short.values.len()] != short.values[..] {
                let mut ops = vec![short.op, long.op];
                ops.sort_unstable();
                anomalies.push(Anomaly {
                    kind: AnomalyKind::NonPrefixRead,
                    detail: format!(
                        "key {key}: two observed lists are not prefix-comparable \
                         ({} vs {} values)",
                        short.values.len(),
                        long.values.len()
                    ),
                    ops,
                });
            }
        }

        // Per-process monotonicity: a later read by the same observer
        // must extend the earlier one.
        let mut last_by_process: BTreeMap<u32, &Read> = BTreeMap::new();
        for rd in key_reads {
            if let Some(prev) = last_by_process.get(&rd.process) {
                let rewound = rd.values.len() < prev.values.len()
                    || rd.values[..prev.values.len()] != prev.values[..];
                if rewound {
                    anomalies.push(Anomaly {
                        kind: AnomalyKind::StaleRead,
                        detail: format!(
                            "key {key}: process {} saw the list rewind from {} to {} values",
                            rd.process,
                            prev.values.len(),
                            rd.values.len()
                        ),
                        ops: vec![prev.op, rd.op],
                    });
                }
            }
            last_by_process.insert(rd.process, rd);
        }

        // Lost appends: every acked append must survive into the final
        // primary state and the fully drained backup image.
        for (label, site) in [("primary", Site::Primary), ("backup", Site::BackupFinal)] {
            let final_read = key_reads.iter().rev().find(|r| r.site == Some(site));
            let Some(final_read) = final_read else { continue };
            let mut missing: Vec<(u64, OpId)> = Vec::new();
            for (&value, &op) in invoked {
                if acked(h, op) && !final_read.values.contains(&value) {
                    missing.push((value, op));
                }
            }
            if !missing.is_empty() {
                let mut ops: Vec<OpId> = missing.iter().map(|&(_, op)| op).collect();
                ops.push(final_read.op);
                ops.sort_unstable();
                let values: Vec<String> =
                    missing.iter().map(|(v, _)| v.to_string()).collect();
                anomalies.push(Anomaly {
                    kind: AnomalyKind::LostAppend,
                    detail: format!(
                        "key {key}: acked append(s) [{}] missing from final {label} read",
                        values.join(",")
                    ),
                    ops,
                });
            }
        }
    }

    anomalies.sort_by_key(|a| (a.ops.first().copied().unwrap_or(OpId::NONE), a.kind.label()));
    CheckReport {
        checker: "append",
        ops_checked,
        anomalies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Recorder, TxnOps};
    use tsuru_sim::SimTime;

    fn append(r: &Recorder, process: u32, t_us: u64, key: u64, value: u64, ack: bool) {
        let op = r.invoke(
            process,
            SimTime::from_micros(t_us),
            OpData::Append { key, value },
        );
        if ack {
            r.ok(
                process,
                op,
                SimTime::from_micros(t_us + 1),
                OpData::Txn(TxnOps::default()),
            );
        }
    }

    fn read(r: &Recorder, process: u32, t_us: u64, key: u64, site: Site, values: &[u64]) {
        let op = r.invoke(
            process,
            SimTime::from_micros(t_us),
            OpData::ReadList { key, site },
        );
        r.ok(
            process,
            op,
            SimTime::from_micros(t_us),
            OpData::List {
                key,
                values: values.to_vec(),
            },
        );
    }

    #[test]
    fn faithful_prefixes_pass() {
        let r = Recorder::enabled();
        append(&r, 1, 10, 0, 1, true);
        append(&r, 2, 20, 0, 2, true);
        append(&r, 1, 30, 0, 3, true);
        read(&r, 1_000, 25, 0, Site::Backup, &[1]);
        read(&r, 1_000, 35, 0, Site::Backup, &[1, 2]);
        read(&r, 1_001, 40, 0, Site::Primary, &[1, 2, 3]);
        read(&r, 1_000, 50, 0, Site::BackupFinal, &[1, 2, 3]);
        let report = check(&r.history());
        assert!(report.is_clean(), "{:?}", report.anomalies);
        assert_eq!(report.ops_checked, 7);
    }

    #[test]
    fn lost_append_after_drain_is_flagged() {
        let r = Recorder::enabled();
        append(&r, 1, 10, 0, 1, true);
        append(&r, 1, 20, 0, 2, true);
        read(&r, 1_001, 40, 0, Site::Primary, &[1, 2]);
        read(&r, 1_000, 50, 0, Site::BackupFinal, &[1]);
        let report = check(&r.history());
        assert_eq!(report.anomalies.len(), 1, "{:?}", report.anomalies);
        let a = &report.anomalies[0];
        assert_eq!(a.kind, AnomalyKind::LostAppend);
        assert!(a.detail.contains("[2]"), "{}", a.detail);
        assert_eq!(a.ops.len(), 2, "append op + final read op");
    }

    #[test]
    fn pending_appends_may_vanish() {
        let r = Recorder::enabled();
        append(&r, 1, 10, 0, 1, true);
        append(&r, 1, 20, 0, 2, false); // invoked, never acked
        read(&r, 1_001, 40, 0, Site::Primary, &[1]);
        read(&r, 1_000, 50, 0, Site::BackupFinal, &[1]);
        assert!(check(&r.history()).is_clean());
    }

    #[test]
    fn pending_appends_may_also_appear() {
        let r = Recorder::enabled();
        append(&r, 1, 10, 0, 1, true);
        append(&r, 1, 20, 0, 2, false);
        read(&r, 1_001, 40, 0, Site::Primary, &[1, 2]);
        assert!(check(&r.history()).is_clean());
    }

    #[test]
    fn reordered_lists_are_not_prefixes() {
        let r = Recorder::enabled();
        append(&r, 1, 10, 0, 1, true);
        append(&r, 1, 20, 0, 2, true);
        read(&r, 1_000, 30, 0, Site::Backup, &[1, 2]);
        read(&r, 1_001, 40, 0, Site::Primary, &[2, 1]);
        let report = check(&r.history());
        assert!(report
            .anomalies
            .iter()
            .any(|a| a.kind == AnomalyKind::NonPrefixRead));
    }

    #[test]
    fn rewinding_observer_is_stale() {
        let r = Recorder::enabled();
        append(&r, 1, 10, 0, 1, true);
        append(&r, 1, 20, 0, 2, true);
        read(&r, 1_000, 30, 0, Site::Backup, &[1, 2]);
        read(&r, 1_000, 40, 0, Site::Backup, &[1]);
        let report = check(&r.history());
        assert!(report
            .anomalies
            .iter()
            .any(|a| a.kind == AnomalyKind::StaleRead));
    }

    #[test]
    fn phantom_and_duplicate_values_are_flagged() {
        let r = Recorder::enabled();
        append(&r, 1, 10, 0, 1, true);
        read(&r, 1_000, 30, 0, Site::Backup, &[1, 99]);
        read(&r, 1_001, 40, 0, Site::Backup, &[1, 1]);
        let report = check(&r.history());
        assert!(report
            .anomalies
            .iter()
            .any(|a| a.kind == AnomalyKind::PhantomValue));
        assert!(report
            .anomalies
            .iter()
            .any(|a| a.kind == AnomalyKind::DuplicateValue));
    }
}
