//! The checker suite: decide whether a recorded history is explainable
//! by a correct system, and name the anomaly when it is not.
//!
//! Every checker consumes the flat record list, counts the operations
//! it actually judged (`ops_checked`), and reports anomalies carrying
//! the **offending op subsequence** — the op ids a human needs to see
//! to understand the violation, in history order.

pub mod append;
pub mod bank;
pub mod image;
pub mod serial;
pub mod shop;

use crate::record::{History, OpData, OpId, Phase};

/// What kind of client-visible anomaly a checker found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// A cycle of ww/wr dependencies between committed transactions
    /// (Adya's G1c: circular information flow).
    WriteCycle,
    /// Two transactions read the same version of a key and both wrote
    /// it: one update swallowed the other.
    LostUpdate,
    /// A dependency cycle involving anti-dependencies (rw) that is not
    /// a lost update: the history is not serializable.
    NonSerializable,
    /// Two committed transactions claim to have installed the same
    /// version of the same key.
    ConflictingWrite,
    /// An acked append is missing from the final state of its list.
    LostAppend,
    /// Two observed lists for one key are not prefix-comparable: the
    /// append order differs between observers.
    NonPrefixRead,
    /// One observer saw a list (or state) go backwards in time.
    StaleRead,
    /// A read observed a value no client ever wrote.
    PhantomValue,
    /// A read observed the same appended value twice in one list.
    DuplicateValue,
    /// An observed account snapshot does not conserve the total
    /// balance.
    BalanceViolation,
    /// An order is visible in an image without its stock decrement:
    /// the cross-database guarantee failed in a client-visible way.
    OrderWithoutStock,
    /// An acked operation is missing from a final (fully drained)
    /// read of the state.
    LostOp,
    /// An image observation failed outright: the reader mounted a
    /// backup image that could not crash-recover. The strongest form
    /// of the paper's collapse — the backup is not merely stale, it is
    /// unusable.
    UnreadableImage,
}

impl AnomalyKind {
    /// Stable label used in reports and violation details.
    pub fn label(self) -> &'static str {
        match self {
            AnomalyKind::WriteCycle => "G1c-write-cycle",
            AnomalyKind::LostUpdate => "lost-update",
            AnomalyKind::NonSerializable => "non-serializable",
            AnomalyKind::ConflictingWrite => "conflicting-write",
            AnomalyKind::LostAppend => "lost-append",
            AnomalyKind::NonPrefixRead => "non-prefix-read",
            AnomalyKind::StaleRead => "stale-read",
            AnomalyKind::PhantomValue => "phantom-value",
            AnomalyKind::DuplicateValue => "duplicate-value",
            AnomalyKind::BalanceViolation => "balance-violation",
            AnomalyKind::OrderWithoutStock => "order-without-stock",
            AnomalyKind::LostOp => "lost-op",
            AnomalyKind::UnreadableImage => "unreadable-image",
        }
    }
}

/// One client-visible violation, with the ops that exhibit it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Anomaly {
    /// What went wrong.
    pub kind: AnomalyKind,
    /// Human-readable specifics (keys, values, totals).
    pub detail: String,
    /// The offending op subsequence: op ids in history order. Enough
    /// to replay the violation by hand from the exported JSONL.
    pub ops: Vec<OpId>,
}

impl Anomaly {
    /// Render as a single line: `kind: detail ops=[op1,op2]`.
    pub fn render(&self) -> String {
        let ids: Vec<String> = self.ops.iter().map(|o| o.0.to_string()).collect();
        format!(
            "{}: {} ops=[{}]",
            self.kind.label(),
            self.detail,
            ids.join(",")
        )
    }
}

/// The verdict of one checker over one history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckReport {
    /// Which checker produced this report.
    pub checker: &'static str,
    /// How many operations the checker actually judged.
    pub ops_checked: u64,
    /// Violations found; empty means the history passed.
    pub anomalies: Vec<Anomaly>,
}

impl CheckReport {
    /// True when no anomaly was found.
    pub fn is_clean(&self) -> bool {
        self.anomalies.is_empty()
    }
}

/// Parameters the checkers cannot derive from the history alone.
#[derive(Debug, Clone, Default)]
pub struct CheckConfig {
    /// The invariant total for the bank checker. When `None`, the
    /// first observed balance snapshot defines the expected total.
    pub expected_total: Option<u64>,
}

/// The combined verdict of every applicable checker.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Verdict {
    /// Records in the judged history.
    pub records: u64,
    /// One report per checker that had operations to judge.
    pub reports: Vec<CheckReport>,
}

impl Verdict {
    /// True when every checker passed.
    pub fn is_clean(&self) -> bool {
        self.reports.iter().all(|r| r.is_clean())
    }

    /// Total operations judged across all checkers.
    pub fn ops_checked(&self) -> u64 {
        self.reports.iter().map(|r| r.ops_checked).sum()
    }

    /// All anomalies across all checkers, in checker order.
    pub fn anomalies(&self) -> impl Iterator<Item = &Anomaly> {
        self.reports.iter().flat_map(|r| r.anomalies.iter())
    }

    /// Multi-line human-readable report, stable across runs.
    pub fn render(&self) -> String {
        let mut out = format!(
            "history: records={} ops_checked={} verdict={}\n",
            self.records,
            self.ops_checked(),
            if self.is_clean() { "clean" } else { "ANOMALIES" }
        );
        for r in &self.reports {
            out.push_str(&format!(
                "  checker={} ops={} anomalies={}\n",
                r.checker,
                r.ops_checked,
                r.anomalies.len()
            ));
            for a in &r.anomalies {
                out.push_str(&format!("    {}\n", a.render()));
            }
        }
        out
    }
}

/// True when `op`'s invoke was answered with [`Phase::Ok`].
pub(crate) fn acked(h: &History, op: OpId) -> bool {
    h.records
        .iter()
        .any(|r| r.op == op && r.phase == Phase::Ok)
}

/// Run every checker that has work in this history.
///
/// The serializability checker runs whenever committed transactions
/// are present; the bank / append / shop checkers run when their ops
/// appear. A history with nothing to judge yields an empty verdict
/// (which is clean).
pub fn check_history(h: &History, cfg: &CheckConfig) -> Verdict {
    let mut reports = Vec::new();

    let has = |pred: &dyn Fn(&OpData) -> bool| h.records.iter().any(|r| pred(&r.data));

    if has(&|d| matches!(d, OpData::Txn(_))) {
        reports.push(serial::check(h));
    }
    if has(&|d| matches!(d, OpData::Transfer { .. } | OpData::ReadBalances { .. })) {
        reports.push(bank::check(h, cfg.expected_total));
    }
    if has(&|d| matches!(d, OpData::Append { .. } | OpData::ReadList { .. })) {
        reports.push(append::check(h));
    }
    if has(&|d| matches!(d, OpData::Order { .. } | OpData::ReadShop { .. })) {
        reports.push(shop::check(h));
    }
    if has(&|d| {
        matches!(
            d,
            OpData::ReadShop { .. } | OpData::ReadBalances { .. } | OpData::ReadList { .. }
        )
    }) {
        reports.push(image::check(h));
    }

    Verdict {
        records: h.len() as u64,
        reports,
    }
}
