//! Offline recursive-descent *item* parser.
//!
//! This is not a Rust parser — it is the smallest grammar that yields a
//! usable symbol table for flow analysis: `mod`/`impl`/`trait` nesting,
//! `fn` items with their body extents, `struct` items with their field
//! types and derives. Everything else (expressions, patterns, types) is
//! skipped by bracket matching. Three properties matter more than
//! grammar coverage:
//!
//! 1. **Totality** — any token soup parses to *some* table without
//!    panicking (property-tested);
//! 2. **Determinism** — the same source always yields the same table;
//! 3. **Conservatism** — when the parser is unsure whether tokens form a
//!    call or a panic source, it records one. Over-approximating keeps
//!    the reachability rules sound (they may warn too much, never too
//!    little); the ratchet and waivers absorb the noise.
//!
//! `#[cfg(test)]` modules and `tests/` files are excluded from the table:
//! test helpers share names with production functions (`apply`, `setup`),
//! and letting them into the call graph would wire every test's panics
//! into the hot path.

use crate::token::{Tok, TokKind};

/// How a function can panic (or touch ambient state), as recorded at a
/// specific site inside its body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SiteKind {
    /// `.unwrap()` on an Option/Result.
    Unwrap,
    /// `.expect("…")` whose message does *not* document an invariant
    /// (messages starting with `invariant` are sanctioned assertions).
    Expect,
    /// `panic!`, `unreachable!`, `todo!`, `unimplemented!`.
    PanicMacro(String),
    /// Postfix `expr[…]` indexing (slice/array/map) that can panic.
    Index,
    /// `.partial_cmp(..).unwrap()/.expect(..)` — float-ordering panic.
    PartialCmpUnwrap,
    /// A call into ambient state (`std::fs`, `std::net`, `std::env`,
    /// `std::process`, stdio), carrying the matched pattern.
    Ambient(String),
}

impl SiteKind {
    /// Short stable label used in diagnostics and lock fingerprints.
    pub fn label(&self) -> String {
        match self {
            SiteKind::Unwrap => "unwrap".to_owned(),
            SiteKind::Expect => "expect".to_owned(),
            SiteKind::PanicMacro(m) => format!("{m}!"),
            SiteKind::Index => "index".to_owned(),
            SiteKind::PartialCmpUnwrap => "partial_cmp-unwrap".to_owned(),
            SiteKind::Ambient(p) => p.clone(),
        }
    }

    /// True for the panic-source kinds (everything but `Ambient`).
    pub fn is_panic(&self) -> bool {
        !matches!(self, SiteKind::Ambient(_))
    }
}

/// One recorded site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// 1-based line.
    pub line: usize,
    /// What happens there.
    pub kind: SiteKind,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Callee name (last path segment / method name).
    pub name: String,
    /// Qualifier, when the call was written `Qualifier::name(…)`.
    /// `.name(…)` method calls and bare `name(…)` calls have none.
    pub qualifier: Option<String>,
    /// True for `.name(…)` method-call syntax.
    pub method: bool,
    /// 1-based line.
    pub line: usize,
}

/// One function in the symbol table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSym {
    /// Function name (method name for impl/trait fns).
    pub name: String,
    /// Enclosing impl/trait type name, if any (`Journal` for
    /// `impl Journal { fn append … }`).
    pub container: Option<String>,
    /// Enclosing module path inside the file (`a::b` for nested mods),
    /// empty at file top level.
    pub module: String,
    /// Crate directory name (`storage` for `crates/storage/...`).
    pub krate: String,
    /// Workspace-relative file path, forward slashes.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Calls made in the body, in source order.
    pub calls: Vec<CallSite>,
    /// Panic/ambient sites in the body, in source order.
    pub sites: Vec<Site>,
}

impl FnSym {
    /// The stable qualified name used in entry-point patterns, DOT
    /// output and lock fingerprints: `Container::name` for methods,
    /// `module::name` (file-stem module) for free functions, plain
    /// `name` at crate root.
    pub fn qualified(&self) -> String {
        match (&self.container, self.module.is_empty()) {
            (Some(c), _) => format!("{c}::{}", self.name),
            (None, false) => format!("{}::{}", self.module, self.name),
            (None, true) => {
                // A free fn at file top level is addressed by its file-stem
                // module (`engine::persist`); crate roots stay bare.
                let stem = self
                    .file
                    .rsplit('/')
                    .next()
                    .and_then(|f| f.strip_suffix(".rs"))
                    .unwrap_or("");
                if stem.is_empty() || stem == "lib" || stem == "main" || stem == "mod" {
                    self.name.clone()
                } else {
                    format!("{stem}::{}", self.name)
                }
            }
        }
    }
}

/// One struct in the symbol table (enough for `float_ordering`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructSym {
    /// Type name.
    pub name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the `struct` keyword.
    pub line: usize,
    /// Derives from the immediately preceding `#[derive(…)]` attributes.
    pub derives: Vec<String>,
    /// Lines of fields whose type mentions `f32`/`f64`.
    pub float_field_lines: Vec<usize>,
}

/// The per-file parse result; [`crate::graph::SymbolTable`] merges these.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileSymbols {
    /// All non-test functions.
    pub fns: Vec<FnSym>,
    /// All non-test structs.
    pub structs: Vec<StructSym>,
    /// `impl Ord for T` / `impl PartialOrd for T` target type names with
    /// the impl's line.
    pub ord_impls: Vec<(String, usize, bool)>, // (type, line, is_total_ord)
}

/// Ambient-state patterns recognized for `sim_purity`. Module heads are
/// matched as `head::…` path prefixes; the rest as qualified calls.
const AMBIENT_MODULE_HEADS: [&str; 4] = ["fs", "net", "process", "env"];
const AMBIENT_CALLS: [(&str, &str); 7] = [
    ("File", "open"),
    ("File", "create"),
    ("OpenOptions", "new"),
    ("Command", "new"),
    ("TcpStream", "connect"),
    ("TcpListener", "bind"),
    ("UdpSocket", "bind"),
];
const AMBIENT_STDIO: [&str; 3] = ["stdin", "stdout", "stderr"];

/// Parse one file's token stream into its symbol table. `file` is the
/// workspace-relative path; `krate` the crate directory name.
pub fn parse_file(file: &str, krate: &str, toks: &[Tok]) -> FileSymbols {
    let mut out = FileSymbols::default();
    let module = String::new();
    parse_items(toks, &mut Cursor { i: 0 }, file, krate, &module, None, &mut out, 0);
    out
}

struct Cursor {
    i: usize,
}

/// Parse a run of items until `toks` is exhausted or an unmatched `}`
/// closes the enclosing block. `depth` caps pathological nesting so the
/// parser stays linear on adversarial input.
#[allow(clippy::too_many_arguments)]
fn parse_items(
    toks: &[Tok],
    cur: &mut Cursor,
    file: &str,
    krate: &str,
    module: &str,
    container: Option<&str>,
    out: &mut FileSymbols,
    depth: u32,
) {
    // Derives/cfg(test) state from attributes seen since the last item.
    let mut pending_derives: Vec<String> = Vec::new();
    let mut pending_cfg_test = false;

    while cur.i < toks.len() {
        let t = &toks[cur.i];

        // End of the enclosing block.
        if t.is_punct('}') {
            cur.i += 1;
            return;
        }

        // Attribute: `#[…]` or `#![…]` — record derive(...) contents and
        // cfg(test), then skip the balanced bracket group.
        if t.is_punct('#') {
            cur.i += 1;
            if toks.get(cur.i).is_some_and(|t| t.is_punct('!')) {
                cur.i += 1;
            }
            if toks.get(cur.i).is_some_and(|t| t.is_punct('[')) {
                let start = cur.i;
                let end = match_bracket(toks, cur.i, '[', ']');
                let inner = &toks[start + 1..end.min(toks.len())];
                if inner.first().is_some_and(|t| t.is_kw("derive")) {
                    pending_derives.extend(
                        inner
                            .iter()
                            .skip(1)
                            .filter_map(|t| t.ident().map(str::to_owned)),
                    );
                }
                if inner.first().is_some_and(|t| t.is_kw("cfg"))
                    && inner.iter().any(|t| t.is_kw("test"))
                {
                    pending_cfg_test = true;
                }
                cur.i = end + 1;
            }
            continue;
        }

        // mod NAME { … } — recurse with an extended module path, unless
        // the mod is cfg(test)-gated (skip entirely).
        if t.is_kw("mod") {
            let name = toks.get(cur.i + 1).and_then(|t| t.ident()).unwrap_or("");
            let name = name.to_owned();
            cur.i += 2;
            // `mod name;` — nothing to do.
            if toks.get(cur.i).is_some_and(|t| t.is_punct(';')) {
                cur.i += 1;
            } else if toks.get(cur.i).is_some_and(|t| t.is_punct('{')) {
                if pending_cfg_test || depth > 64 {
                    cur.i = match_bracket(toks, cur.i, '{', '}') + 1;
                } else {
                    let sub = if module.is_empty() {
                        name
                    } else {
                        format!("{module}::{name}")
                    };
                    cur.i += 1;
                    parse_items(toks, cur, file, krate, &sub, container, out, depth + 1);
                }
            }
            pending_derives.clear();
            pending_cfg_test = false;
            continue;
        }

        // impl [<…>] Type [for Trait] { items } — methods get the TARGET
        // type as container (`impl Ord for Foo` puts fns under Foo).
        if t.is_kw("impl") {
            cur.i += 1;
            skip_generics(toks, cur);
            let first = read_type_name(toks, cur);
            let mut target = first.clone();
            let mut trait_name: Option<String> = None;
            if toks.get(cur.i).is_some_and(|t| t.is_kw("for")) {
                cur.i += 1;
                trait_name = Some(first.clone());
                target = read_type_name(toks, cur);
            }
            // Skip any where clause up to the opening brace.
            while cur.i < toks.len()
                && !toks[cur.i].is_punct('{')
                && !toks[cur.i].is_punct(';')
            {
                cur.i += 1;
            }
            if let Some(tr) = &trait_name {
                if tr == "Ord" || tr == "PartialOrd" {
                    out.ord_impls.push((target.clone(), t.line, tr == "Ord"));
                }
            }
            if toks.get(cur.i).is_some_and(|t| t.is_punct('{')) {
                if pending_cfg_test || depth > 64 {
                    cur.i = match_bracket(toks, cur.i, '{', '}') + 1;
                } else {
                    cur.i += 1;
                    let cont = if target.is_empty() { None } else { Some(target.as_str()) };
                    parse_items(toks, cur, file, krate, module, cont, out, depth + 1);
                }
            }
            pending_derives.clear();
            pending_cfg_test = false;
            continue;
        }

        // trait NAME { items } — default method bodies parse like impls,
        // with the trait name as container.
        if t.is_kw("trait") {
            let name = toks.get(cur.i + 1).and_then(|t| t.ident()).unwrap_or("").to_owned();
            cur.i += 2;
            while cur.i < toks.len()
                && !toks[cur.i].is_punct('{')
                && !toks[cur.i].is_punct(';')
            {
                cur.i += 1;
            }
            if toks.get(cur.i).is_some_and(|t| t.is_punct('{')) {
                if pending_cfg_test || depth > 64 {
                    cur.i = match_bracket(toks, cur.i, '{', '}') + 1;
                } else {
                    cur.i += 1;
                    let cont = if name.is_empty() { None } else { Some(name.as_str()) };
                    parse_items(toks, cur, file, krate, module, cont, out, depth + 1);
                }
            }
            pending_derives.clear();
            pending_cfg_test = false;
            continue;
        }

        // struct NAME — record fields' float-ness and pending derives.
        if t.is_kw("struct") && !pending_cfg_test {
            let line = t.line;
            let name = toks.get(cur.i + 1).and_then(|t| t.ident()).unwrap_or("").to_owned();
            cur.i += 2;
            skip_generics(toks, cur);
            let mut float_lines = Vec::new();
            // Tuple struct `( … );`, unit `;`, or braced `{ … }`.
            if toks.get(cur.i).is_some_and(|t| t.is_punct('(')) {
                let end = match_bracket(toks, cur.i, '(', ')');
                for tk in &toks[cur.i..end.min(toks.len())] {
                    if tk.is_kw("f32") || tk.is_kw("f64") {
                        float_lines.push(tk.line);
                    }
                }
                cur.i = end + 1;
            } else {
                while cur.i < toks.len()
                    && !toks[cur.i].is_punct('{')
                    && !toks[cur.i].is_punct(';')
                {
                    cur.i += 1;
                }
                if toks.get(cur.i).is_some_and(|t| t.is_punct('{')) {
                    let end = match_bracket(toks, cur.i, '{', '}');
                    for tk in &toks[cur.i..end.min(toks.len())] {
                        if tk.is_kw("f32") || tk.is_kw("f64") {
                            float_lines.push(tk.line);
                        }
                    }
                    cur.i = end + 1;
                }
            }
            if !name.is_empty() {
                out.structs.push(StructSym {
                    name,
                    file: file.to_owned(),
                    line,
                    derives: std::mem::take(&mut pending_derives),
                    float_field_lines: float_lines,
                });
            }
            pending_derives.clear();
            pending_cfg_test = false;
            continue;
        }

        // fn NAME — the payload item.
        if t.is_kw("fn") {
            let line = t.line;
            let name = toks.get(cur.i + 1).and_then(|t| t.ident()).unwrap_or("").to_owned();
            cur.i += 2;
            // Signature: scan to the body `{` (or `;` for bodyless trait
            // fns), tracking (), [] and <> nesting so a `{` inside a
            // const-generic expression never terminates the signature.
            let mut paren = 0i32;
            let mut square = 0i32;
            let mut angle = 0i32;
            let mut prev_dash = false;
            while cur.i < toks.len() {
                let tk = &toks[cur.i];
                match tk.kind {
                    TokKind::Punct('(') => paren += 1,
                    TokKind::Punct(')') => paren -= 1,
                    TokKind::Punct('[') => square += 1,
                    TokKind::Punct(']') => square -= 1,
                    TokKind::Punct('<') if !prev_dash => angle += 1,
                    TokKind::Punct('>') if !prev_dash => angle = (angle - 1).max(0),
                    TokKind::Punct('{') if paren <= 0 && square <= 0 && angle <= 0 => break,
                    TokKind::Punct(';') if paren <= 0 && square <= 0 && angle <= 0 => break,
                    _ => {}
                }
                prev_dash = tk.is_punct('-');
                cur.i += 1;
            }
            let mut sym = FnSym {
                name,
                container: container.map(str::to_owned),
                module: module.to_owned(),
                krate: krate.to_owned(),
                file: file.to_owned(),
                line,
                calls: Vec::new(),
                sites: Vec::new(),
            };
            if toks.get(cur.i).is_some_and(|t| t.is_punct('{')) {
                let end = match_bracket(toks, cur.i, '{', '}');
                scan_body(&toks[cur.i + 1..end.min(toks.len())], &mut sym);
                cur.i = end + 1;
            } else if toks.get(cur.i).is_some_and(|t| t.is_punct(';')) {
                cur.i += 1;
            }
            if !sym.name.is_empty() && !pending_cfg_test {
                out.fns.push(sym);
            }
            pending_derives.clear();
            pending_cfg_test = false;
            continue;
        }

        // Any other brace-bearing construct (use, const, static, enum,
        // extern blocks, stray expressions): advance one token; braces
        // encountered outside a recognized item just nest the item loop.
        if t.is_punct('{') {
            cur.i += 1;
            parse_items(toks, cur, file, krate, module, container, out, depth + 1);
            continue;
        }
        cur.i += 1;
        // Keep derives pending across doc-comment gaps but drop them once
        // real non-attribute tokens intervene (e.g. `pub`, `pub(crate)`).
        if !(t.is_kw("pub")
            || t.is_punct('(')
            || t.is_punct(')')
            || t.ident().is_some_and(|n| n == "crate" || n == "super"))
        {
            pending_derives.clear();
            pending_cfg_test = false;
        }
    }
}

/// Index of the bracket matching `toks[open]` (which must be `open_c`),
/// or `toks.len()` when unterminated.
fn match_bracket(toks: &[Tok], open: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct(open_c) {
            depth += 1;
        } else if toks[i].is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len()
}

/// Skip a `<…>` generics group if the cursor is on `<`.
fn skip_generics(toks: &[Tok], cur: &mut Cursor) {
    if !toks.get(cur.i).is_some_and(|t| t.is_punct('<')) {
        return;
    }
    let mut depth = 0i32;
    let mut prev_dash = false;
    while cur.i < toks.len() {
        let t = &toks[cur.i];
        if t.is_punct('<') && !prev_dash {
            depth += 1;
        } else if t.is_punct('>') && !prev_dash {
            depth -= 1;
            if depth == 0 {
                cur.i += 1;
                return;
            }
        }
        prev_dash = t.is_punct('-');
        cur.i += 1;
    }
}

/// Read a type's head name at the cursor: the last identifier of a
/// leading path (`a::b::Type` → `Type`), skipping `&`, lifetimes and a
/// trailing generics group. Empty when the next token is not a path
/// (tuple/slice/fn-pointer types — the parser does not need those).
fn read_type_name(toks: &[Tok], cur: &mut Cursor) -> String {
    while toks
        .get(cur.i)
        .is_some_and(|t| t.is_punct('&') || t.kind == TokKind::Lifetime || t.is_kw("mut") || t.is_kw("dyn"))
    {
        cur.i += 1;
    }
    let mut name = String::new();
    while let Some(t) = toks.get(cur.i) {
        if let Some(id) = t.ident() {
            name = id.to_owned();
            cur.i += 1;
            skip_generics(toks, cur);
            if toks.get(cur.i).is_some_and(|t| t.is_punct(':'))
                && toks.get(cur.i + 1).is_some_and(|t| t.is_punct(':'))
            {
                cur.i += 2;
                continue;
            }
        }
        break;
    }
    name
}

/// Scan a function body's tokens for calls, panic sources and ambient
/// touches. Flat (closures and nested blocks are part of the enclosing
/// fn — a panic inside a closure the fn builds is still a panic the fn
/// can reach), except nested `fn` items, whose bodies belong to
/// themselves and are skipped here (the item parser has already claimed
/// them? no — nested fns inside bodies are rare and conservative
/// attribution to the outer fn is sound, so they stay).
fn scan_body(body: &[Tok], sym: &mut FnSym) {
    let mut i = 0usize;
    while i < body.len() {
        let t = &body[i];

        // Attribute groups inside bodies (`#[allow]`, `#[cfg]`): skip, so
        // their bracket never reads as indexing.
        if t.is_punct('#') {
            let mut j = i + 1;
            if body.get(j).is_some_and(|t| t.is_punct('!')) {
                j += 1;
            }
            if body.get(j).is_some_and(|t| t.is_punct('[')) {
                i = match_bracket(body, j, '[', ']') + 1;
                continue;
            }
            i += 1;
            continue;
        }

        if let Some(name) = t.ident() {
            let line = t.line;

            // Macro invocation: `name!(…)` / `name![…]` / `name!{…}`.
            if body.get(i + 1).is_some_and(|t| t.is_punct('!'))
                && body.get(i + 2).is_some_and(|t| {
                    t.is_punct('(') || t.is_punct('[') || t.is_punct('{')
                })
            {
                if matches!(name, "panic" | "unreachable" | "todo" | "unimplemented") {
                    sym.sites.push(Site {
                        line,
                        kind: SiteKind::PanicMacro(name.to_owned()),
                    });
                }
                // Do not skip the macro body: arguments may contain real
                // calls and panic sources (`format!("{}", x.unwrap())`).
                i += 2;
                continue;
            }

            // Method call `.name(…)` / `.name::<…>(…)`.
            let is_method = i > 0 && body[i - 1].is_punct('.');
            // Qualified path call `Qual::name(…)`.
            let qualifier = if i >= 3
                && body[i - 1].is_punct(':')
                && body[i - 2].is_punct(':')
            {
                body[i - 3].ident().map(str::to_owned)
            } else {
                None
            };

            // Where does the potential argument list start? Straight `(`
            // or a turbofish `::<…>(`.
            let mut j = i + 1;
            if body.get(j).is_some_and(|t| t.is_punct(':'))
                && body.get(j + 1).is_some_and(|t| t.is_punct(':'))
                && body.get(j + 2).is_some_and(|t| t.is_punct('<'))
            {
                let mut c = Cursor { i: j + 2 };
                skip_generics(body, &mut c);
                j = c.i;
            }
            let is_call = body.get(j).is_some_and(|t| t.is_punct('('));

            if is_call {
                match name {
                    "unwrap" if is_method => {
                        // `.partial_cmp(..).unwrap()` is the float-ordering
                        // hazard; look back past the closed arg list.
                        if prev_call_is(body, i, "partial_cmp") {
                            sym.sites.push(Site {
                                line,
                                kind: SiteKind::PartialCmpUnwrap,
                            });
                        }
                        sym.sites.push(Site {
                            line,
                            kind: SiteKind::Unwrap,
                        });
                    }
                    "expect" if is_method => {
                        let msg = body.get(j + 1).and_then(|t| match &t.kind {
                            TokKind::Str(s) => Some(s.as_str()),
                            _ => None,
                        });
                        let sanctioned =
                            msg.is_some_and(|m| m.trim_start().starts_with("invariant"));
                        if prev_call_is(body, i, "partial_cmp") {
                            sym.sites.push(Site {
                                line,
                                kind: SiteKind::PartialCmpUnwrap,
                            });
                        }
                        if !sanctioned {
                            sym.sites.push(Site {
                                line,
                                kind: SiteKind::Expect,
                            });
                        }
                    }
                    _ => {}
                }
                // Ambient calls.
                if let Some(q) = &qualifier {
                    if AMBIENT_CALLS
                        .iter()
                        .any(|(ty, m)| q == ty && name == *m)
                    {
                        sym.sites.push(Site {
                            line,
                            kind: SiteKind::Ambient(format!("{q}::{name}")),
                        });
                    }
                }
                if !is_method
                    && AMBIENT_STDIO.contains(&name)
                    && matches!(qualifier.as_deref(), Some("io") | Some("std"))
                {
                    sym.sites.push(Site {
                        line,
                        kind: SiteKind::Ambient(format!("io::{name}")),
                    });
                }
                sym.calls.push(CallSite {
                    name: name.to_owned(),
                    qualifier,
                    method: is_method,
                    line,
                });
                i = j; // continue at the argument list
                continue;
            }

            // Ambient module path use: `fs::…`, `std::fs`, `env::var` —
            // an identifier head followed by `::`.
            if body.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && body.get(i + 2).is_some_and(|t| t.is_punct(':'))
            {
                let head = if name == "std" {
                    body.get(i + 3).and_then(|t| t.ident())
                } else {
                    Some(name)
                };
                if let Some(h) = head {
                    if AMBIENT_MODULE_HEADS.contains(&h) {
                        sym.sites.push(Site {
                            line,
                            kind: SiteKind::Ambient(format!("{h}::")),
                        });
                        // Avoid double-reporting `std::fs` via both arms.
                        if name == "std" {
                            i += 4;
                            continue;
                        }
                    }
                }
            }
            i += 1;
            continue;
        }

        // Postfix indexing: `[` directly after an ident, `)`, or `]` is
        // an index expression (array types `[u8; N]`, array literals and
        // attribute groups all sit after non-postfix tokens). A bare
        // full-range slice `[..]` cannot panic and is ignored.
        if t.is_punct('[') {
            let postfix = i > 0
                && (body[i - 1].ident().is_some()
                    || body[i - 1].is_punct(')')
                    || body[i - 1].is_punct(']'));
            if postfix {
                let end = match_bracket(body, i, '[', ']');
                let inner = &body[i + 1..end.min(body.len())];
                let full_range =
                    inner.len() == 2 && inner[0].is_punct('.') && inner[1].is_punct('.');
                if !inner.is_empty() && !full_range {
                    sym.sites.push(Site {
                        line: t.line,
                        kind: SiteKind::Index,
                    });
                }
            }
            i += 1;
            continue;
        }

        i += 1;
    }
}

/// Is the token before the `.` at `dot_idx - 1` the close of a call to
/// `callee`? Used to spot `.partial_cmp(…).unwrap()` chains.
fn prev_call_is(body: &[Tok], method_idx: usize, callee: &str) -> bool {
    // body[method_idx] is the method name; body[method_idx-1] is `.`.
    if method_idx < 2 || !body[method_idx - 1].is_punct('.') {
        return false;
    }
    let mut i = method_idx - 2;
    if !body[i].is_punct(')') {
        return false;
    }
    // Walk back to the matching `(`.
    let mut depth = 0i32;
    loop {
        if body[i].is_punct(')') {
            depth += 1;
        } else if body[i].is_punct('(') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        if i == 0 {
            return false;
        }
        i -= 1;
    }
    i > 0 && body[i - 1].ident() == Some(callee)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize;

    fn parse(src: &str) -> FileSymbols {
        parse_file("crates/demo/src/lib.rs", "demo", &tokenize(src))
    }

    #[test]
    fn free_fns_and_methods_get_qualified_names() {
        let s = parse(
            "pub fn top() {}\n\
             impl Journal { pub fn append(&mut self) {} }\n\
             trait Pump { fn kick(&self) { self.run(); } }\n",
        );
        let names: Vec<String> = s.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(names, ["top", "Journal::append", "Pump::kick"]);
    }

    #[test]
    fn impl_trait_for_type_uses_target_type() {
        let s = parse("impl Event for StorageOp { fn dispatch(self) { run(); } }");
        assert_eq!(s.fns[0].qualified(), "StorageOp::dispatch");
        assert_eq!(s.fns[0].calls[0].name, "run");
    }

    #[test]
    fn cfg_test_mods_are_excluded() {
        let s = parse(
            "pub fn real() {}\n\
             #[cfg(test)]\nmod tests { fn helper() { x.unwrap(); } }\n",
        );
        assert_eq!(s.fns.len(), 1);
        assert_eq!(s.fns[0].name, "real");
    }

    #[test]
    fn panic_sites_are_classified() {
        let s = parse(
            "fn f(v: Vec<u32>, i: usize) -> u32 {\n\
                 let a = v.get(i).unwrap();\n\
                 let b = v.first().expect(\"oops\");\n\
                 let c = v.first().expect(\"invariant: non-empty by admission\");\n\
                 if i > 9 { panic!(\"no\"); }\n\
                 v[i] + a + b + c\n\
             }\n",
        );
        let kinds: Vec<String> = s.fns[0].sites.iter().map(|s| s.kind.label()).collect();
        assert_eq!(kinds, ["unwrap", "expect", "panic!", "index"]);
    }

    #[test]
    fn full_range_slices_and_attributes_are_not_indexing() {
        let s = parse(
            "fn f(v: &[u8]) -> &[u8] {\n\
                 #[allow(dead_code)]\n\
                 let w = &v[..];\n\
                 let x: [u8; 4] = [0, 1, 2, 3];\n\
                 let _ = x;\n\
                 w\n\
             }\n",
        );
        assert!(
            s.fns[0].sites.iter().all(|s| s.kind != SiteKind::Index),
            "sites: {:?}",
            s.fns[0].sites
        );
        let s2 = parse("fn g(v: &[u8], a: usize) -> &[u8] { &v[a..] }");
        assert!(s2.fns[0].sites.iter().any(|s| s.kind == SiteKind::Index));
    }

    #[test]
    fn turbofish_calls_resolve_to_the_callee() {
        let s = parse("fn f() { frob::<Vec<BTreeMap<u32, Vec<u8>>>>(1); g.h::<u8>(); }");
        let calls: Vec<&str> = s.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(calls, ["frob", "h"]);
        assert_eq!(s.fns[0].calls[0].qualifier, None);
        assert!(s.fns[0].calls[1].method);
    }

    #[test]
    fn qualified_calls_carry_their_qualifier() {
        let s = parse("fn f() { Journal::append(j); engine::persist(s); }");
        assert_eq!(s.fns[0].calls[0].qualifier.as_deref(), Some("Journal"));
        assert_eq!(s.fns[0].calls[1].qualifier.as_deref(), Some("engine"));
    }

    #[test]
    fn ambient_sites_are_recorded() {
        let s = parse(
            "fn f() {\n\
                 let d = std::fs::read_to_string(\"x\");\n\
                 let e = env::var(\"HOME\");\n\
                 let c = Command::new(\"ls\");\n\
             }\n",
        );
        let labels: Vec<String> = s.fns[0]
            .sites
            .iter()
            .filter(|s| !s.kind.is_panic())
            .map(|s| s.kind.label())
            .collect();
        assert_eq!(labels, ["fs::", "env::", "Command::new"]);
    }

    #[test]
    fn partial_cmp_unwrap_is_flagged() {
        let s = parse("fn f(a: f64, b: f64) { v.sort_by(|x, y| x.partial_cmp(y).unwrap()); }");
        assert!(s.fns[0]
            .sites
            .iter()
            .any(|s| s.kind == SiteKind::PartialCmpUnwrap));
    }

    #[test]
    fn structs_record_derives_and_float_fields() {
        let s = parse(
            "#[derive(Debug, PartialOrd, Clone)]\n\
             pub struct Score { pub value: f64, pub name: String }\n\
             #[derive(Ord)]\nstruct T(f32);\n\
             struct Plain { x: u32 }\n",
        );
        assert_eq!(s.structs.len(), 3);
        assert_eq!(s.structs[0].derives, ["Debug", "PartialOrd", "Clone"]);
        assert_eq!(s.structs[0].float_field_lines.len(), 1);
        assert_eq!(s.structs[1].float_field_lines.len(), 1);
        assert!(s.structs[2].float_field_lines.is_empty());
    }

    #[test]
    fn ord_impls_are_recorded() {
        let s = parse(
            "impl Ord for Score { fn cmp(&self, o: &Self) -> Ordering { todo!() } }\n\
             impl PartialOrd for Score {}\n",
        );
        assert_eq!(s.ord_impls.len(), 2);
        assert_eq!(s.ord_impls[0], ("Score".to_owned(), 1, true));
        assert!(!s.ord_impls[1].2);
    }

    #[test]
    fn raw_identifiers_and_shadowed_names_parse() {
        let s = parse(
            "fn r#match() { r#type(); }\n\
             fn shadow() { let shadow = 1; shadow2(shadow); }\n",
        );
        assert_eq!(s.fns[0].name, "match");
        assert_eq!(s.fns[0].calls[0].name, "type");
        assert_eq!(s.fns[1].calls[0].name, "shadow2");
    }

    #[test]
    fn parser_is_total_on_unbalanced_soup() {
        for junk in [
            "fn f( {",
            "impl {",
            "mod",
            "struct",
            "fn",
            "impl Ord for {}",
            "fn x() { [ }",
            "trait T { fn a(&self)",
            "#[derive(]",
        ] {
            let a = parse(junk);
            let b = parse(junk);
            assert_eq!(a, b);
        }
    }
}
