//! Workspace symbol table and conservative name-resolved call graph.
//!
//! Resolution is *by name*, deliberately over-approximate (DESIGN.md §12):
//!
//! - `Qual::name(…)` resolves to fns whose container is `Qual` plus free
//!   fns in a module named `Qual` (so `engine::persist` works);
//! - `Self::name(…)` resolves within the calling fn's own container;
//! - `.name(…)` resolves to **every** method named `name` in the
//!   workspace (the analyzer knows no receiver types);
//! - bare `name(…)` resolves to every free fn named `name`.
//!
//! Calls into std or vendored crates resolve to nothing and vanish. The
//! over-approximation direction is the sound one for reachability rules:
//! an edge too many can only produce a finding too many — never hide one
//! — and the ratchet (`detlint.lock`) plus waivers absorb the noise.
//!
//! The graph is a queryable artifact: `detlint graph --dot` renders it
//! for Graphviz, `detlint graph --symbols` lists the table.

use std::collections::{BTreeMap, BTreeSet};

use crate::parse::FnSym;

/// The merged workspace symbol table plus its call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All functions, sorted by (file, line) — the node list. Indices
    /// into this vector are the node ids used everywhere below.
    pub fns: Vec<FnSym>,
    /// node → resolved callee nodes (sorted, deduped).
    pub edges: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Build the graph from per-file parses (any order — the table is
    /// sorted internally so the result is deterministic).
    pub fn build(mut fns: Vec<FnSym>) -> Self {
        fns.sort_by(|a, b| (&a.file, a.line, &a.name).cmp(&(&b.file, b.line, &b.name)));

        // Name indices for resolution.
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free_fns: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_container: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut by_module: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            match &f.container {
                Some(c) => {
                    methods.entry(&f.name).or_default().push(i);
                    by_container.entry((c.as_str(), &f.name)).or_default().push(i);
                }
                None => {
                    free_fns.entry(&f.name).or_default().push(i);
                }
            }
            // The *last* module segment is the qualifier people write
            // (`engine::persist`, not `crate::engine::persist`).
            let last_mod = f.module.rsplit("::").next().unwrap_or("");
            let file_mod = f
                .file
                .rsplit('/')
                .next()
                .and_then(|n| n.strip_suffix(".rs"))
                .unwrap_or("");
            if f.container.is_none() {
                if !last_mod.is_empty() {
                    by_module.entry((last_mod, &f.name)).or_default().push(i);
                }
                if !file_mod.is_empty() && file_mod != last_mod {
                    by_module.entry((file_mod, &f.name)).or_default().push(i);
                }
            }
        }

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        for (i, f) in fns.iter().enumerate() {
            let mut out: BTreeSet<usize> = BTreeSet::new();
            for call in &f.calls {
                match (&call.qualifier, call.method) {
                    (Some(q), _) => {
                        let q = if q == "Self" {
                            f.container.as_deref().unwrap_or("")
                        } else {
                            q.as_str()
                        };
                        if let Some(v) = by_container.get(&(q, call.name.as_str())) {
                            out.extend(v.iter().copied());
                        }
                        if let Some(v) = by_module.get(&(q, call.name.as_str())) {
                            out.extend(v.iter().copied());
                        }
                    }
                    (None, true) => {
                        if let Some(v) = methods.get(call.name.as_str()) {
                            out.extend(v.iter().copied());
                        }
                    }
                    (None, false) => {
                        if let Some(v) = free_fns.get(call.name.as_str()) {
                            out.extend(v.iter().copied());
                        }
                        // A bare call inside an impl may be a plain-path
                        // call to a sibling method taken by UFCS — rare;
                        // ignored (would wire every `new()` everywhere).
                    }
                }
            }
            out.remove(&i); // self-recursion adds nothing to reachability
            edges[i] = out.into_iter().collect();
        }
        CallGraph { fns, edges }
    }

    /// Node ids matching an entry-point pattern. Patterns:
    ///
    /// - `name` — free fn of that name (any module);
    /// - `module::name` or `Type::name` — qualified fn;
    /// - `Type::*` — every method of `Type`;
    /// - `*::name` — every method of that name regardless of container.
    pub fn match_pattern(&self, pattern: &str) -> Vec<usize> {
        let mut out = Vec::new();
        let (qual, name) = match pattern.rsplit_once("::") {
            Some((q, n)) => (Some(q), n),
            None => (None, pattern),
        };
        for (i, f) in self.fns.iter().enumerate() {
            let matches = match qual {
                None => f.container.is_none() && f.name == name,
                Some("*") => f.container.is_some() && f.name == name,
                Some(q) => {
                    let container_ok = f.container.as_deref() == Some(q);
                    let module_ok = f.container.is_none()
                        && (f.module.rsplit("::").next() == Some(q)
                            || f.file
                                .rsplit('/')
                                .next()
                                .and_then(|n| n.strip_suffix(".rs"))
                                == Some(q));
                    (container_ok || module_ok) && (name == "*" || f.name == name)
                }
            };
            if matches {
                out.push(i);
            }
        }
        out
    }

    /// BFS from `roots` up to `max_depth` call edges. Returns, for every
    /// reached node, `(depth, predecessor)` — predecessor is the node it
    /// was first reached from (roots point at themselves), which lets
    /// diagnostics print a shortest call chain back to an entry point.
    pub fn reach(&self, roots: &[usize], max_depth: usize) -> BTreeMap<usize, (usize, usize)> {
        let mut seen: BTreeMap<usize, (usize, usize)> = BTreeMap::new();
        let mut frontier: Vec<usize> = Vec::new();
        for &r in roots {
            if r < self.fns.len() && !seen.contains_key(&r) {
                seen.insert(r, (0, r));
                frontier.push(r);
            }
        }
        let mut depth = 0usize;
        while !frontier.is_empty() && depth < max_depth {
            depth += 1;
            let mut next = Vec::new();
            for &n in &frontier {
                for &m in &self.edges[n] {
                    if let std::collections::btree_map::Entry::Vacant(e) = seen.entry(m) {
                        e.insert((depth, n));
                        next.push(m);
                    }
                }
            }
            frontier = next;
        }
        seen
    }

    /// The shortest call chain from an entry point to `node`, as
    /// qualified names (`entry -> … -> node`), given a `reach` result.
    pub fn chain(&self, reach: &BTreeMap<usize, (usize, usize)>, node: usize) -> String {
        let name = |i: usize| -> String {
            self.fns
                .get(i)
                .expect("invariant: reach nodes index self.fns")
                .qualified()
        };
        let mut parts = vec![name(node)];
        let mut cur = node;
        let mut guard = 0usize;
        while let Some(&(_, pred)) = reach.get(&cur) {
            if pred == cur || guard > 64 {
                break;
            }
            parts.push(name(pred));
            cur = pred;
            guard += 1;
        }
        parts.reverse();
        parts.join(" -> ")
    }

    /// Render the graph in Graphviz DOT, clustered by crate. Nodes are
    /// qualified names; panic-source-bearing fns are marked.
    pub fn render_dot(&self) -> String {
        let mut s = String::from("digraph detlint_callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n");
        let mut by_crate: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in self.fns.iter().enumerate() {
            by_crate.entry(&f.krate).or_default().push(i);
        }
        for (krate, nodes) in &by_crate {
            s.push_str(&format!("  subgraph \"cluster_{krate}\" {{\n    label=\"{krate}\";\n"));
            for &i in nodes {
                let f = &self.fns[i];
                let panics = f.sites.iter().any(|s| s.kind.is_panic());
                let style = if panics { ", style=filled, fillcolor=\"#ffdddd\"" } else { "" };
                s.push_str(&format!(
                    "    n{i} [label=\"{}\"{style}];\n",
                    f.qualified().replace('"', "'")
                ));
            }
            s.push_str("  }\n");
        }
        for (i, outs) in self.edges.iter().enumerate() {
            for &j in outs {
                s.push_str(&format!("  n{i} -> n{j};\n"));
            }
        }
        s.push_str("}\n");
        s
    }

    /// Render the symbol table as one line per fn:
    /// `crate file:line qualified-name [labels…]`.
    pub fn render_symbols(&self) -> String {
        let mut s = String::new();
        for f in &self.fns {
            let labels: Vec<String> = f.sites.iter().map(|x| x.kind.label()).collect();
            s.push_str(&format!(
                "{} {}:{} {}{}{}\n",
                f.krate,
                f.file,
                f.line,
                f.qualified(),
                if labels.is_empty() { "" } else { " " },
                labels.join(",")
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use crate::token::tokenize;

    fn graph(files: &[(&str, &str, &str)]) -> CallGraph {
        let mut fns = Vec::new();
        for (file, krate, src) in files {
            fns.extend(parse_file(file, krate, &tokenize(src)).fns);
        }
        CallGraph::build(fns)
    }

    #[test]
    fn qualified_and_method_calls_resolve() {
        let g = graph(&[
            (
                "crates/a/src/engine.rs",
                "a",
                "pub fn persist() { Journal::append(j); helper(); }\n\
                 fn helper() { x.push_arrived(e); }\n",
            ),
            (
                "crates/a/src/journal.rs",
                "a",
                "impl Journal {\n\
                     pub fn append(&mut self) { self.grow(); }\n\
                     fn grow(&mut self) {}\n\
                     pub fn push_arrived(&mut self) {}\n\
                 }\n",
            ),
        ]);
        let persist = g.match_pattern("engine::persist");
        assert_eq!(persist.len(), 1);
        let reach = g.reach(&persist, 10);
        let reached: Vec<String> =
            reach.keys().map(|&i| g.fns[i].qualified()).collect();
        assert_eq!(
            reached,
            [
                "engine::persist",
                "engine::helper",
                "Journal::append",
                "Journal::grow",
                "Journal::push_arrived"
            ]
        );
    }

    #[test]
    fn depth_limit_bounds_reachability() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "a",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() { d(); }\nfn d() {}\n",
        )]);
        let roots = g.match_pattern("a");
        assert_eq!(g.reach(&roots, 1).len(), 2); // a, b
        assert_eq!(g.reach(&roots, 3).len(), 4); // all
    }

    #[test]
    fn wildcard_patterns_match_methods() {
        let g = graph(&[(
            "crates/a/src/ev.rs",
            "a",
            "impl StorageOp { fn dispatch(self) {} }\n\
             impl EcomOp { fn dispatch(self) {} }\n\
             impl StorageOp { fn other(self) {} }\n",
        )]);
        assert_eq!(g.match_pattern("*::dispatch").len(), 2);
        assert_eq!(g.match_pattern("StorageOp::*").len(), 2);
        assert_eq!(g.match_pattern("StorageOp::dispatch").len(), 1);
    }

    #[test]
    fn chains_trace_back_to_entry() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "a",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() { v.unwrap(); }\n",
        )]);
        let roots = g.match_pattern("a");
        let reach = g.reach(&roots, 10);
        let c = g.match_pattern("c")[0];
        assert_eq!(g.chain(&reach, c), "a -> b -> c");
    }

    #[test]
    fn graph_is_deterministic_under_file_order() {
        let files = [
            ("crates/a/src/x.rs", "a", "fn f() { g(); }"),
            ("crates/b/src/y.rs", "b", "fn g() { h.unwrap(); }"),
        ];
        let g1 = graph(&files);
        let rev: Vec<_> = files.iter().rev().cloned().collect();
        let g2 = graph(&rev);
        assert_eq!(g1.render_dot(), g2.render_dot());
        assert_eq!(g1.render_symbols(), g2.render_symbols());
    }

    #[test]
    fn dot_marks_panicking_nodes() {
        let g = graph(&[("crates/a/src/x.rs", "a", "fn f() { x.unwrap(); }\nfn ok() {}")]);
        let dot = g.render_dot();
        assert!(dot.contains("fillcolor"));
        assert!(dot.contains("cluster_a"));
    }
}
