//! Token-level lexer for the v2 static analyzer.
//!
//! The original per-line lexer ([`crate::lex`]) collapses every literal to
//! a single space, which is exactly right for the pattern-scanning rules —
//! but the item parser needs more: identifiers with their spelling, string
//! literal *contents* (to distinguish `expect("invariant: …")` from a bare
//! `expect("oops")`), and punctuation it can bracket-match (turbofish,
//! generics, attribute groups). This module lexes the same surface —
//! nested block comments, ordinary/byte/raw/raw-byte strings (`"…"`,
//! `b"…"`, `r#"…"#`, `br#"…"#`, `c"…"`), char and byte-char literals,
//! lifetimes, raw identifiers (`r#type` lexes as the identifier `type`
//! with a raw marker) — into a flat token stream with line numbers.
//!
//! The lexer is total: any byte soup produces a token stream without
//! panicking (property-tested in `tests/graph.rs`).

/// What kind of token this is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword. Raw identifiers (`r#match`) carry the
    /// name without the `r#` sigil; `raw` distinguishes them so `r#fn`
    /// is never parsed as the `fn` keyword.
    Ident { name: String, raw: bool },
    /// Any string-ish literal (`"…"`, `b"…"`, `r#"…"#`, `br#"…"#`,
    /// `c"…"`), carrying its uninterpreted contents.
    Str(String),
    /// A char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// A numeric literal.
    Num,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// One punctuation character (`::` is two `Punct(':')` tokens).
    Punct(char),
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based line of the token's first character.
    pub line: usize,
    /// The token itself.
    pub kind: TokKind,
}

impl Tok {
    /// The identifier name, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident { name, .. } => Some(name),
            _ => None,
        }
    }

    /// True if this token is the given non-raw identifier/keyword.
    /// (`r#fn` is *not* the keyword `fn`.)
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(&self.kind, TokKind::Ident { name, raw: false } if name == kw)
    }

    /// True if this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// Lex `source` into a token stream. Comments vanish; literals keep their
/// contents only where the parser needs them (strings).
pub fn tokenize(source: &str) -> Vec<Tok> {
    let chars: Vec<char> = source.chars().collect();
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Consume `\n`-aware: every newline bumps the line counter exactly once
    // no matter which literal/comment state it occurs in.
    macro_rules! bump {
        ($n:expr) => {{
            for k in 0..$n {
                if chars.get(i + k) == Some(&'\n') {
                    line += 1;
                }
            }
            i += $n;
        }};
    }

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < chars.len() {
        let c = chars[i];
        let at_line = line;

        // Whitespace.
        if c.is_whitespace() {
            bump!(1);
            continue;
        }

        // Comments.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1u32;
            bump!(2);
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    bump!(2);
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    bump!(2);
                } else {
                    bump!(1);
                }
            }
            continue;
        }

        // Identifier-led forms: raw identifiers, raw strings, byte strings,
        // byte chars, c-strings, and plain identifiers. Resolving these
        // here (longest match first) is what keeps `br#"…"#` from lexing
        // as the identifier `br` followed by garbage.
        if is_ident_start(c) {
            // Raw string / raw byte string: r"…" r#"…"# br"…" br#"…"#,
            // plus raw c-strings cr#"…"#.
            let prefix_len = match c {
                'r' => Some(0usize),
                'b' | 'c' if chars.get(i + 1) == Some(&'r') => Some(1usize),
                _ => None,
            };
            if let Some(extra) = prefix_len {
                let mut j = i + extra + 1;
                let mut hashes = 0usize;
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if chars.get(j) == Some(&'"') {
                    // Raw string body: ends at `"` + `hashes` hashes.
                    let mut content = String::new();
                    bump!(j + 1 - i);
                    'raw: while i < chars.len() {
                        if chars[i] == '"' {
                            let mut seen = 0usize;
                            while seen < hashes && chars.get(i + 1 + seen) == Some(&'#') {
                                seen += 1;
                            }
                            if seen == hashes {
                                bump!(1 + hashes);
                                break 'raw;
                            }
                        }
                        content.push(chars[i]);
                        bump!(1);
                    }
                    toks.push(Tok {
                        line: at_line,
                        kind: TokKind::Str(content),
                    });
                    continue;
                }
                // Raw identifier r#name.
                if c == 'r' && hashes == 1 && chars.get(j).copied().is_some_and(is_ident_start) {
                    let mut name = String::new();
                    let mut k = j;
                    while k < chars.len() && is_ident_cont(chars[k]) {
                        name.push(chars[k]);
                        k += 1;
                    }
                    bump!(k - i);
                    toks.push(Tok {
                        line: at_line,
                        kind: TokKind::Ident { name, raw: true },
                    });
                    continue;
                }
            }
            // Byte string b"…" / c-string c"…".
            if (c == 'b' || c == 'c') && chars.get(i + 1) == Some(&'"') {
                bump!(1); // the prefix; the quote is handled below
            } else if c == 'b' && chars.get(i + 1) == Some(&'\'') {
                // Byte char b'x'.
                bump!(1);
            } else {
                let mut name = String::new();
                let mut k = i;
                while k < chars.len() && is_ident_cont(chars[k]) {
                    name.push(chars[k]);
                    k += 1;
                }
                bump!(k - i);
                toks.push(Tok {
                    line: at_line,
                    kind: TokKind::Ident { name, raw: false },
                });
                continue;
            }
        }

        let c = chars[i];

        // Ordinary (escaped) string literal.
        if c == '"' {
            let mut content = String::new();
            bump!(1);
            while i < chars.len() {
                if chars[i] == '\\' {
                    content.push('\\');
                    if let Some(&e) = chars.get(i + 1) {
                        content.push(e);
                    }
                    bump!(2);
                } else if chars[i] == '"' {
                    bump!(1);
                    break;
                } else {
                    content.push(chars[i]);
                    bump!(1);
                }
            }
            toks.push(Tok {
                line: at_line,
                kind: TokKind::Str(content),
            });
            continue;
        }

        // Char literal vs lifetime (same disambiguation as `lex`).
        if c == '\'' {
            match chars.get(i + 1) {
                Some('\\') => {
                    bump!(2);
                    while i < chars.len() && chars[i] != '\'' {
                        if chars[i] == '\\' {
                            bump!(2);
                        } else {
                            bump!(1);
                        }
                    }
                    bump!(1);
                    toks.push(Tok {
                        line: at_line,
                        kind: TokKind::Char,
                    });
                    continue;
                }
                Some(&m) if chars.get(i + 2) == Some(&'\'') && m != '\'' => {
                    bump!(3);
                    toks.push(Tok {
                        line: at_line,
                        kind: TokKind::Char,
                    });
                    continue;
                }
                Some(&m) if is_ident_start(m) => {
                    // Lifetime: 'ident (not followed by a closing quote).
                    let mut k = i + 1;
                    while k < chars.len() && is_ident_cont(chars[k]) {
                        k += 1;
                    }
                    bump!(k - i);
                    toks.push(Tok {
                        line: at_line,
                        kind: TokKind::Lifetime,
                    });
                    continue;
                }
                _ => {
                    bump!(1);
                    toks.push(Tok {
                        line: at_line,
                        kind: TokKind::Punct('\''),
                    });
                    continue;
                }
            }
        }

        // Numeric literal (digits plus enough continuation to swallow
        // `0xff_u64`, `1.5e-3`, `1_000`). The parser never looks inside.
        if c.is_ascii_digit() {
            let mut k = i;
            while k < chars.len()
                && (chars[k].is_ascii_alphanumeric()
                    || chars[k] == '_'
                    || (chars[k] == '.' && chars.get(k + 1).is_some_and(|d| d.is_ascii_digit()))
                    || ((chars[k] == '+' || chars[k] == '-')
                        && k > i
                        && (chars[k - 1] == 'e' || chars[k - 1] == 'E')
                        && chars[k.saturating_sub(1)].is_ascii_alphanumeric()
                        && chars.get(k + 1).is_some_and(|d| d.is_ascii_digit())))
            {
                k += 1;
            }
            bump!(k - i);
            toks.push(Tok {
                line: at_line,
                kind: TokKind::Num,
            });
            continue;
        }

        // Everything else: one punctuation character.
        bump!(1);
        toks.push(Tok {
            line: at_line,
            kind: TokKind::Punct(c),
        });
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn raw_byte_strings_are_single_literals() {
        // The regression the v2 parser depends on: `br#"…"#` must lex as
        // one Str token, not as the identifier `br` plus soup.
        let toks = tokenize(r###"let x = br#"unwrap() "quoted" inside"#; f(x);"###);
        let strs: Vec<_> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, [r#"unwrap() "quoted" inside"#]);
        assert_eq!(idents(r###"let x = br#"unwrap()"#; f(x);"###), ["let", "x", "f", "x"]);
    }

    #[test]
    fn multiline_raw_byte_strings_keep_line_numbers() {
        let toks = tokenize("let a = br#\"line\none\ntwo\"#;\nfn after() {}\n");
        let after = toks.iter().find(|t| t.is_kw("fn")).expect("fn token");
        assert_eq!(after.line, 4, "raw-string newlines must advance the line counter");
    }

    #[test]
    fn raw_identifiers_carry_their_name() {
        let toks = tokenize("fn r#match(r#type: u32) {}");
        assert!(toks.iter().any(
            |t| matches!(&t.kind, TokKind::Ident { name, raw: true } if name == "match")
        ));
        // And a raw `r#fn` is not the `fn` keyword.
        let toks = tokenize("let r#fn = 1;");
        assert_eq!(toks.iter().filter(|t| t.is_kw("fn")).count(), 0);
    }

    #[test]
    fn expect_messages_are_visible() {
        let toks = tokenize(r#"x.expect("invariant: journal has capacity");"#);
        assert!(toks.iter().any(
            |t| matches!(&t.kind, TokKind::Str(s) if s.starts_with("invariant:"))
        ));
    }

    #[test]
    fn nested_turbofish_in_call_position() {
        // The full nested-generic gauntlet the call-graph extractor walks.
        let toks = tokenize("frob::<Vec<BTreeMap<u32, Vec<u8>>>>(x)");
        assert_eq!(toks[0].ident(), Some("frob"));
        // `>>>` must come through as three separate Punct('>') so the
        // parser's angle matching can pair each one.
        let closes = toks.iter().filter(|t| t.is_punct('>')).count();
        let opens = toks.iter().filter(|t| t.is_punct('<')).count();
        assert_eq!(opens, 4);
        assert_eq!(closes, 4);
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let toks = tokenize("fn f<'a>(x: &'a str, c: char) -> bool { c == 'x' && c != b'\\n' as char }");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn comments_vanish_entirely() {
        let toks = tokenize("a(); /* x.unwrap() /* nested */ */ // b.unwrap()\nc();");
        let names = toks.iter().filter_map(|t| t.ident()).collect::<Vec<_>>();
        assert_eq!(names, ["a", "c"]);
    }

    #[test]
    fn tokenizer_is_total_on_junk() {
        for junk in ["r#", "br#\"unterminated", "'", "\"open", "b'", "0x", "'\\", "r#\"\n"] {
            let _ = tokenize(junk); // must not panic
            let a = tokenize(junk);
            let b = tokenize(junk);
            assert_eq!(a, b, "tokenize must be deterministic on {junk:?}");
        }
    }
}
