//! # detlint — workspace-wide determinism & safety lint
//!
//! The repo's core claim — byte-identical experiment output at any thread
//! count, and prefix-consistent backup images — rests on discipline that no
//! type system enforces: no wall-clock reads inside simulated code, no
//! ambient randomness, no hash-order iteration where it can reach output,
//! no stray threads, no unexplained `unsafe`, no bare `unwrap()` on
//! replication hot paths. This crate encodes that discipline as
//! machine-checked rules so CI fails the moment a PR reintroduces a
//! nondeterministic input (DESIGN.md "Determinism invariants").
//!
//! Everything is hand-rolled — no `syn`, no dependencies — so the lint
//! builds fully offline and can never be broken by a vendored-dep change.
//! Two analysis layers share one front end:
//!
//! - a per-line **lexer** ([`lex`]) feeding six token rules (string/char
//!   literal contents blanked, comments routed to their own channel, so
//!   `"Instant::now"` in a string or comment is never flagged);
//! - a full **tokenizer** ([`token`]) + **item parser** ([`parse`])
//!   building a per-crate symbol table and a conservative name-resolved
//!   **call graph** ([`graph`], queryable via `detlint graph --dot`),
//!   feeding three flow rules ([`flow`]).
//!
//! ## Rules
//!
//! Token rules (hard-fail — the tree is clean and stays clean):
//!
//! | rule | invariant |
//! |------|-----------|
//! | `wall_clock` | no `Instant::now` / `SystemTime` outside the sim clock |
//! | `ambient_rng` | no `thread_rng` / `from_entropy` / `OsRng` — all randomness flows from `DetRng` |
//! | `hash_collections` | no `HashMap`/`HashSet` in deterministic crates' `src/` — use `BTreeMap`/`BTreeSet` |
//! | `thread_spawn` | no `thread::spawn` outside the trial harness |
//! | `unsafe_safety` | every `unsafe` is preceded by a `// SAFETY:` comment |
//! | `hot_path_unwrap` | legacy file-list unwrap ban (superseded by `panic_reachable`) |
//!
//! Flow rules (ratcheted against `detlint.lock` — see [`lock`]):
//!
//! | rule | invariant |
//! |------|-----------|
//! | `panic_reachable` | no panic source (`unwrap`, non-invariant `expect`, `panic!`, indexing, …) within K call edges of a replication entry point |
//! | `sim_purity` | nothing reachable from a kernel event handler touches `std::fs`/`io`/`net`/`process`/`env` |
//! | `float_ordering` | no `f32`/`f64` in `Ord` impls, `BTreeMap` keys, or digest/export-reachable state |
//!
//! `.expect("invariant: …")` — a message that *names the invariant* — is
//! the sanctioned way to assert unreachable states on the hot path;
//! `panic_reachable` accepts it and flags everything else.
//!
//! ## Waivers
//!
//! A finding is waived by a comment on the same line or the line above:
//!
//! ```text
//! // detlint: allow(wall_clock) — batch wall-clock is reporting-only
//! ```
//!
//! The reason after the closing paren is mandatory; a reasonless waiver is
//! itself reported. File-level allowlists live in `detlint.toml` at the
//! workspace root. Flow-rule findings that are accepted debt live in
//! `detlint.lock` instead — fingerprinted by rule + path + symbol (never
//! line numbers) and burned down monotonically via `--update-lock`.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod flow;
pub mod graph;
pub mod lock;
pub mod parse;
pub mod token;

pub use graph::CallGraph;
pub use lock::{ratchet, Lock, RatchetReport};

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

/// One source line, split into its code text and its comment text.
///
/// String/char literal *contents* are blanked out of `code` (each literal
/// collapses to a single space), so pattern scans can never match inside
/// them. Comment text — line comments, doc comments, and each line's share
/// of a (possibly nested) block comment — lands in `comment`, where the
/// waiver and `SAFETY:` scanners look.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Line {
    /// Code with literal contents removed.
    pub code: String,
    /// Comment text on this line.
    pub comment: String,
}

/// Split `source` into per-line code/comment channels.
pub fn lex(source: &str) -> Vec<Line> {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Normal,
        LineComment,
        /// Nested block comment at the given depth.
        Block(u32),
        /// Ordinary (escaped) string literal.
        Str,
        /// Raw string terminated by `"` followed by this many `#`.
        RawStr(u32),
    }

    let chars: Vec<char> = source.chars().collect();
    let mut lines: Vec<Line> = vec![Line::default()];
    let mut st = State::Normal;
    let mut i = 0usize;

    // Can `chars[idx]` start a raw-string prefix? `r` / `br` only count when
    // not glued onto a preceding identifier (`for"x"` is not valid Rust, but
    // `r#raw_ident` is, and must not be read as a raw string).
    let prev_is_ident = |idx: usize, chars: &[char]| -> bool {
        idx > 0 && (chars[idx - 1].is_alphanumeric() || chars[idx - 1] == '_')
    };

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if st == State::LineComment {
                st = State::Normal;
            }
            lines.push(Line::default());
            i += 1;
            continue;
        }
        let cur = lines.last_mut().expect("lines is never empty");
        match st {
            State::Normal => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    st = State::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    st = State::Block(1);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    cur.code.push(' ');
                    st = State::Str;
                    i += 1;
                    continue;
                }
                // Raw strings: r"..." / r#"..."# / br"..." / br#"..."#.
                if c == 'r' {
                    let raw_ok = !prev_is_ident(i, &chars)
                        || (chars[i - 1] == 'b' && !prev_is_ident(i - 1, &chars));
                    if raw_ok {
                        let mut j = i + 1;
                        let mut hashes = 0u32;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            cur.code.push(' ');
                            st = State::RawStr(hashes);
                            i = j + 1;
                            continue;
                        }
                    }
                }
                // Char literal vs lifetime.
                if c == '\'' {
                    match chars.get(i + 1) {
                        // Escaped char: '\n', '\'', '\u{..}' — scan to the
                        // closing quote, skipping escape pairs.
                        Some('\\') => {
                            let mut j = i + 1;
                            while j < chars.len() {
                                if chars[j] == '\\' {
                                    j += 2;
                                } else if chars[j] == '\'' {
                                    break;
                                } else {
                                    j += 1;
                                }
                            }
                            cur.code.push(' ');
                            i = (j + 1).min(chars.len());
                            continue;
                        }
                        // Simple one-char literal 'a' (the middle char may
                        // itself be anything, including '"').
                        Some(_) if chars.get(i + 2) == Some(&'\'') => {
                            cur.code.push(' ');
                            i += 3;
                            continue;
                        }
                        // A lifetime ('a, 'static): the quote is plain code.
                        _ => {}
                    }
                }
                cur.code.push(c);
                i += 1;
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::Block(depth) => {
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    st = State::Block(depth + 1);
                    cur.comment.push_str("/*");
                    i += 2;
                } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                    st = if depth == 1 {
                        State::Normal
                    } else {
                        cur.comment.push_str("*/");
                        State::Block(depth - 1)
                    };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2; // skip the escaped char (may be a quote)
                } else if c == '"' {
                    st = State::Normal;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        st = State::Normal;
                        i = j;
                        continue;
                    }
                }
                i += 1;
            }
        }
    }
    lines
}

/// Does `haystack` contain `needle` with identifier boundaries on both
/// sides? (`HashMap` matches in `std::collections::HashMap<K, V>` but not
/// in `FxHashMap` or `HashMapLike`; `unsafe` does not match `unsafe_code`.)
pub fn find_word(haystack: &str, needle: &str) -> bool {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let ok_before = start == 0
            || !haystack[..start].chars().next_back().is_some_and(is_ident);
        let ok_after = end == haystack.len()
            || !haystack[end..].chars().next().is_some_and(is_ident);
        if ok_before && ok_after {
            return true;
        }
        from = start + 1;
    }
    false
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// The nine rule identifiers, in reporting order: the six token rules,
/// then the three flow rules (which ratchet against `detlint.lock`).
pub const RULE_NAMES: [&str; 9] = [
    "wall_clock",
    "ambient_rng",
    "hash_collections",
    "thread_spawn",
    "unsafe_safety",
    "hot_path_unwrap",
    "panic_reachable",
    "sim_purity",
    "float_ordering",
];

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (one of [`RULE_NAMES`]).
    pub rule: &'static str,
    /// Enclosing symbol (qualified fn or type name) for flow-rule
    /// findings; `None` for the token rules. Part of the lock
    /// fingerprint, so it must be stable under unrelated line edits.
    pub symbol: Option<String>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} — {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Lint configuration: per-rule file allowlists plus rule scoping, loaded
/// from `detlint.toml` (see [`parse_config`]) or built-in defaults.
#[derive(Debug, Clone)]
pub struct Config {
    /// rule name → workspace-relative paths where findings are allowed.
    pub allow: BTreeMap<String, Vec<String>>,
    /// Crates (directory names under `crates/`) whose `src/` must not use
    /// hash collections (and whose state `float_ordering` polices).
    pub deterministic_crates: Vec<String>,
    /// Files whose bare `unwrap()`s are hot-path findings. Legacy: the
    /// shipped `detlint.toml` no longer lists any — `panic_reachable`
    /// covers the hot path by reachability, not by file list.
    pub hot_paths: Vec<String>,
    /// `panic_reachable` entry-point patterns (see
    /// [`CallGraph::match_pattern`] for the pattern grammar).
    pub panic_entry_points: Vec<String>,
    /// Maximum call-edge distance `panic_reachable` explores (the K in
    /// "reachable within K call edges").
    pub panic_max_depth: usize,
    /// `sim_purity` entry-point patterns (kernel event handlers).
    pub purity_entry_points: Vec<String>,
    /// Maximum call-edge distance `sim_purity` explores.
    pub purity_max_depth: usize,
}

impl Config {
    /// An empty configuration (nothing scoped, nothing allowed).
    pub fn empty() -> Self {
        Config {
            allow: BTreeMap::new(),
            deterministic_crates: Vec::new(),
            hot_paths: Vec::new(),
            panic_entry_points: Vec::new(),
            panic_max_depth: 12,
            purity_entry_points: Vec::new(),
            purity_max_depth: 16,
        }
    }

    /// The built-in defaults, mirroring the shipped `detlint.toml`. Used
    /// when no config file is present so the binary is useful standalone.
    /// (`hot_paths` keeps the pre-v2 file list here for standalone use,
    /// even though the shipped config has retired it in favor of
    /// `panic_reachable`.)
    pub fn default_repo() -> Self {
        let mut allow = BTreeMap::new();
        allow.insert(
            "wall_clock".to_owned(),
            vec!["crates/sim/src/time.rs".to_owned()],
        );
        allow.insert(
            "thread_spawn".to_owned(),
            vec!["crates/core/src/harness.rs".to_owned()],
        );
        Config {
            allow,
            deterministic_crates: [
                "sim", "storage", "core", "minidb", "plugin", "chaos", "telemetry", "history",
            ]
            .map(str::to_owned)
            .to_vec(),
            hot_paths: [
                "crates/storage/src/journal.rs",
                "crates/storage/src/array.rs",
                "crates/storage/src/acklog.rs",
                "crates/minidb/src/wal.rs",
                "crates/plugin/src/replication.rs",
            ]
            .map(str::to_owned)
            .to_vec(),
            panic_entry_points: [
                "engine::persist",
                "engine::host_write",
                "engine::sdc_leg_send",
                "engine::sdc_leg_arrive",
                "engine::sdc_leg_done",
                "engine::kick_transfer",
                "engine::run_transfer",
                "engine::receive_batch",
                "engine::kick_apply",
                "engine::run_apply",
                "engine::finish_apply",
                "engine::release_primary_upto",
                "Journal::*",
                "AckLog::append",
                "WalWriter::append",
                "wal::scan_wal",
                "StorageOp::dispatch",
            ]
            .map(str::to_owned)
            .to_vec(),
            panic_max_depth: 12,
            purity_entry_points: ["*::dispatch", "Sim::step", "Sim::run", "Sim::run_until"]
                .map(str::to_owned)
                .to_vec(),
            purity_max_depth: 16,
        }
    }

    fn is_allowed(&self, rule: &str, path: &str) -> bool {
        self.allow
            .get(rule)
            .is_some_and(|paths| paths.iter().any(|p| p == path))
    }
}

/// A waiver parsed from a comment: `detlint: allow(rule, ...) — reason`.
#[derive(Debug, Clone, Default)]
struct Waiver {
    rules: Vec<String>,
    has_reason: bool,
}

fn parse_waivers(comment: &str) -> Vec<Waiver> {
    const MARKER: &str = "detlint: allow(";
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = comment[from..].find(MARKER) {
        let start = from + pos + MARKER.len();
        let Some(close) = comment[start..].find(')') else {
            break;
        };
        let inner = &comment[start..start + close];
        let rest = &comment[start + close + 1..];
        // The reason is whatever follows the closing paren, minus
        // decorative separators. It must say *something*.
        let reason = rest
            .trim_start_matches([' ', '\t', '—', '-', '–', ':'])
            .trim();
        out.push(Waiver {
            rules: inner
                .split(',')
                .map(|r| r.trim().to_owned())
                .filter(|r| !r.is_empty())
                .collect(),
            has_reason: !reason.is_empty(),
        });
        from = start + close + 1;
    }
    out
}

/// Crate directory name for a `crates/<name>/...` path, if any.
pub(crate) fn crate_of(path: &str) -> Option<&str> {
    path.strip_prefix("crates/")?.split('/').next()
}

/// Lint one file. `path` is the workspace-relative path with forward
/// slashes — it drives rule scoping (deterministic crates, hot paths,
/// allowlists); `source` is the file's contents.
pub fn check_file(path: &str, source: &str, config: &Config) -> Vec<Finding> {
    let lines = lex(source);
    let waivers: Vec<Vec<Waiver>> =
        lines.iter().map(|l| parse_waivers(&l.comment)).collect();

    let in_det_crate_src = path.contains("/src/")
        && crate_of(path)
            .is_some_and(|c| config.deterministic_crates.iter().any(|d| d == c));
    let is_hot_path = config.hot_paths.iter().any(|p| p == path);

    let mut found: Vec<Finding> = Vec::new();
    let mut push = |line: usize, rule: &'static str, message: String| {
        found.push(Finding {
            file: path.to_owned(),
            line,
            rule,
            symbol: None,
            message,
        });
    };

    for (idx, line) in lines.iter().enumerate() {
        let n = idx + 1;
        let code = line.code.as_str();
        if code.trim().is_empty() {
            continue;
        }

        if !config.is_allowed("wall_clock", path) {
            for pat in ["Instant::now", "SystemTime"] {
                if find_word(code, pat) {
                    push(
                        n,
                        "wall_clock",
                        format!(
                            "`{pat}` reads the wall clock; simulated code must \
                             use the sim clock (tsuru_sim::SimTime)"
                        ),
                    );
                }
            }
        }

        if !config.is_allowed("ambient_rng", path) {
            for pat in ["thread_rng", "from_entropy", "OsRng"] {
                if find_word(code, pat) {
                    push(
                        n,
                        "ambient_rng",
                        format!(
                            "`{pat}` draws ambient randomness; all randomness \
                             must flow from a seeded DetRng"
                        ),
                    );
                }
            }
        }

        if in_det_crate_src && !config.is_allowed("hash_collections", path) {
            for (pat, fix) in [("HashMap", "BTreeMap"), ("HashSet", "BTreeSet")] {
                if find_word(code, pat) {
                    push(
                        n,
                        "hash_collections",
                        format!(
                            "`{pat}` iteration order is nondeterministic; use \
                             `{fix}` in deterministic crates"
                        ),
                    );
                }
            }
        }

        if !config.is_allowed("thread_spawn", path) && code.contains("thread::spawn") {
            push(
                n,
                "thread_spawn",
                "raw thread spawn; all parallelism must go through the \
                 trial harness (crates/core/src/harness.rs)"
                    .to_owned(),
            );
        }

        if !config.is_allowed("unsafe_safety", path) && find_word(code, "unsafe") {
            // Accept a SAFETY: comment on the same line or on the run of
            // comment-only lines immediately above.
            let mut justified = line.comment.contains("SAFETY:");
            let mut k = idx;
            while !justified && k > 0 {
                k -= 1;
                if !lines[k].code.trim().is_empty() {
                    break;
                }
                justified = lines[k].comment.contains("SAFETY:");
            }
            if !justified {
                push(
                    n,
                    "unsafe_safety",
                    "`unsafe` without a preceding `// SAFETY:` comment \
                     explaining why it is sound"
                        .to_owned(),
                );
            }
        }

        if is_hot_path && !config.is_allowed("hot_path_unwrap", path) {
            let mut at = 0;
            while let Some(pos) = code[at..].find(".unwrap()") {
                push(
                    n,
                    "hot_path_unwrap",
                    "bare `unwrap()` on a replication/journal/WAL hot path; \
                     propagate a typed error or use `expect(\"invariant: ...\")`"
                        .to_owned(),
                );
                at += pos + ".unwrap()".len();
            }
        }
    }

    // Apply waivers: a waiver covers its own line and the line below it.
    found.retain(|f| {
        let mut lines_to_check = vec![f.line - 1];
        if f.line >= 2 {
            lines_to_check.push(f.line - 2);
        }
        for li in lines_to_check {
            for w in &waivers[li] {
                if w.rules.iter().any(|r| r == f.rule) {
                    return !w.has_reason; // reasonless waivers do not count
                }
            }
        }
        true
    });

    // Reasonless waivers are findings in their own right — otherwise the
    // waiver syntax silently degrades into a no-questions-asked off switch.
    for (idx, ws) in waivers.iter().enumerate() {
        for w in ws {
            if !w.has_reason && !w.rules.is_empty() {
                found.push(Finding {
                    file: path.to_owned(),
                    line: idx + 1,
                    rule: RULE_NAMES
                        .iter()
                        .find(|r| w.rules.iter().any(|x| x == **r))
                        .copied()
                        .unwrap_or("wall_clock"),
                    symbol: None,
                    message: format!(
                        "waiver `allow({})` has no reason; write \
                         `// detlint: allow(rule) — why this is sound`",
                        w.rules.join(", ")
                    ),
                });
            }
        }
    }

    found.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    found
}

// ---------------------------------------------------------------------------
// Workspace walk
// ---------------------------------------------------------------------------

/// Collect every lintable `.rs` file under `root`: `crates/*/src`,
/// `crates/*/tests` and the workspace-level `tests/`, skipping any
/// `fixtures` directory (detlint's own test corpus intentionally violates
/// every rule). Returns workspace-relative paths, sorted, so output order —
/// like everything else in this repo — is deterministic.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            for sub in ["src", "tests"] {
                collect_rs(&dir.join(sub), &mut out)?;
            }
        }
    }
    collect_rs(&root.join("tests"), &mut out)?;
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lint a whole workspace rooted at `root` with the token rules only.
/// Paths in findings are `root`-relative with forward slashes.
pub fn check_workspace(root: &Path, config: &Config) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for file in workspace_files(root)? {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&file)?;
        findings.extend(check_file(&rel, &source, config));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

/// The result of a full v2 analysis: the call graph (queryable via
/// `detlint graph`) plus every finding from all nine rules.
pub struct Analysis {
    /// The workspace call graph over production (`src/`) code.
    pub graph: CallGraph,
    /// All findings — token rules and flow rules — sorted and deduped,
    /// with allowlists and inline waivers already applied. Callers diff
    /// the ratcheted subset against `detlint.lock` via [`lock::ratchet`].
    pub findings: Vec<Finding>,
}

/// Run the full analysis: the six token rules over every lintable file,
/// then the item parser + call graph over production `src/` code feeding
/// the three flow rules (`panic_reachable`, `sim_purity`,
/// `float_ordering`). Inline waivers and `[allow.<rule>]` lists apply to
/// flow findings exactly as they do to token findings.
pub fn analyze_workspace(root: &Path, config: &Config) -> std::io::Result<Analysis> {
    let mut findings = check_workspace(root, config)?;

    let mut fns = Vec::new();
    let mut parsed: Vec<(String, parse::FileSymbols)> = Vec::new();
    let mut flow_findings: Vec<Finding> = Vec::new();
    let mut waiver_tables: BTreeMap<String, Vec<Vec<Waiver>>> = BTreeMap::new();
    for file in workspace_files(root)? {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        // The graph models production code: `tests/` never feeds the
        // symbol table (test helpers share names like `apply` with hot-path
        // fns and would pollute reachability). `#[cfg(test)]` mods are
        // dropped by the parser itself.
        if !rel.contains("/src/") {
            continue;
        }
        let source = std::fs::read_to_string(&file)?;
        let krate = crate_of(&rel).unwrap_or("workspace").to_owned();
        let toks = token::tokenize(&source);
        flow_findings.extend(flow::float_keyed_collections(&rel, &toks, config));
        let syms = parse::parse_file(&rel, &krate, &toks);
        fns.extend(syms.fns.clone());
        parsed.push((rel.clone(), syms));
        waiver_tables.insert(
            rel,
            lex(&source).iter().map(|l| parse_waivers(&l.comment)).collect(),
        );
    }
    let graph = CallGraph::build(fns);
    flow_findings.extend(flow::panic_reachable(&graph, config));
    flow_findings.extend(flow::sim_purity(&graph, config));
    flow_findings.extend(flow::float_ordering(&parsed, config));

    flow_findings.retain(|f| {
        if config.is_allowed(f.rule, &f.file) {
            return false;
        }
        let Some(waivers) = waiver_tables.get(&f.file) else {
            return true;
        };
        let mut lines_to_check = vec![f.line - 1];
        if f.line >= 2 {
            lines_to_check.push(f.line - 2);
        }
        for li in lines_to_check {
            let Some(ws) = waivers.get(li) else { continue };
            for w in ws {
                if w.rules.iter().any(|r| r == f.rule) {
                    return !w.has_reason; // reasonless waivers do not count
                }
            }
        }
        true
    });

    findings.extend(flow_findings);
    findings.sort_by(|a, b| (&a.file, a.line, a.rule, &a.symbol).cmp(&(&b.file, b.line, b.rule, &b.symbol)));
    findings.dedup();
    Ok(Analysis { graph, findings })
}

// ---------------------------------------------------------------------------
// Config file (TOML subset)
// ---------------------------------------------------------------------------

/// Parse `detlint.toml`. Supported subset: `[section.name]` headers,
/// `key = ["a", "b"]` string arrays (single- or multi-line), bare
/// `key = 12` integers, `#` comments. Sections map onto [`Config`]:
///
/// - `[allow.<rule>]` / `paths = [...]` — per-rule file allowlist;
/// - `[rules.hash_collections]` / `crates = [...]` — deterministic crates;
/// - `[rules.hot_path_unwrap]` / `paths = [...]` — legacy hot-path files;
/// - `[rules.panic_reachable]` / `entry_points = [...]`, `max_depth = K`;
/// - `[rules.sim_purity]` / `entry_points = [...]`, `max_depth = K`.
pub fn parse_config(text: &str) -> Result<Config, String> {
    let mut cfg = Config::empty();
    let mut section = String::new();
    let mut pending_key: Option<String> = None;
    let mut pending_val = String::new();

    let mut apply = |section: &str, key: &str, value: TomlValue| -> Result<(), String> {
        let strings = |value: TomlValue| -> Result<Vec<String>, String> {
            match value {
                TomlValue::Strings(v) => Ok(v),
                TomlValue::Int(_) => {
                    Err(format!("[{section}] `{key}` expects a string array"))
                }
            }
        };
        let int = |value: TomlValue| -> Result<usize, String> {
            match value {
                TomlValue::Int(n) => Ok(n),
                TomlValue::Strings(_) => {
                    Err(format!("[{section}] `{key}` expects an integer"))
                }
            }
        };
        if let Some(rule) = section.strip_prefix("allow.") {
            if key != "paths" {
                return Err(format!("[{section}] supports only `paths`, got `{key}`"));
            }
            if !RULE_NAMES.contains(&rule) {
                return Err(format!("unknown rule `{rule}` in [{section}]"));
            }
            cfg.allow
                .entry(rule.to_owned())
                .or_default()
                .extend(strings(value)?);
        } else if section == "rules.hash_collections" && key == "crates" {
            cfg.deterministic_crates = strings(value)?;
        } else if section == "rules.hot_path_unwrap" && key == "paths" {
            cfg.hot_paths = strings(value)?;
        } else if section == "rules.panic_reachable" && key == "entry_points" {
            cfg.panic_entry_points = strings(value)?;
        } else if section == "rules.panic_reachable" && key == "max_depth" {
            cfg.panic_max_depth = int(value)?;
        } else if section == "rules.sim_purity" && key == "entry_points" {
            cfg.purity_entry_points = strings(value)?;
        } else if section == "rules.sim_purity" && key == "max_depth" {
            cfg.purity_max_depth = int(value)?;
        } else {
            return Err(format!("unrecognized `{key}` in [{section}]"));
        }
        Ok(())
    };

    for raw in text.lines() {
        let line = strip_toml_comment(raw);
        let t = line.trim();
        if let Some(key) = pending_key.clone() {
            pending_val.push_str(line.trim());
            if balanced(&pending_val) {
                apply(&section, &key, TomlValue::Strings(parse_string_array(&pending_val)?))?;
                pending_key = None;
                pending_val.clear();
            }
            continue;
        }
        if t.is_empty() {
            continue;
        }
        if let Some(name) = t.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            section = name.trim().to_owned();
            continue;
        }
        let Some((k, v)) = t.split_once('=') else {
            return Err(format!("unparseable line: `{t}`"));
        };
        let (k, v) = (k.trim().to_owned(), v.trim().to_owned());
        if let Ok(n) = v.parse::<usize>() {
            apply(&section, &k, TomlValue::Int(n))?;
        } else if balanced(&v) {
            apply(&section, &k, TomlValue::Strings(parse_string_array(&v)?))?;
        } else {
            pending_key = Some(k);
            pending_val = v;
        }
    }
    if pending_key.is_some() {
        return Err("unterminated array at end of file".to_owned());
    }
    Ok(cfg)
}

/// A parsed TOML-subset value: a string array or a bare integer.
enum TomlValue {
    Strings(Vec<String>),
    Int(usize),
}

/// Strip a `#` comment, respecting double-quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn balanced(v: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in v.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0 && !in_str
}

fn parse_string_array(v: &str) -> Result<Vec<String>, String> {
    let t = v.trim();
    let inner = t
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected a string array, got `{t}`"))?;
    let mut out = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        let Some(stripped) = rest.strip_prefix('"') else {
            return Err(format!("expected a quoted string at `{rest}`"));
        };
        let Some(end) = stripped.find('"') else {
            return Err(format!("unterminated string at `{rest}`"));
        };
        out.push(stripped[..end].to_owned());
        rest = stripped[end + 1..].trim_start_matches([',', ' ', '\t']).trim();
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// Render findings as the `--fix-list` machine-readable JSON report.
pub fn render_json(findings: &[Finding]) -> String {
    let mut s = String::from("{\n  \"total\": ");
    s.push_str(&findings.len().to_string());
    s.push_str(",\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {\"file\": \"");
        json_escape(&mut s, &f.file);
        s.push_str("\", \"line\": ");
        s.push_str(&f.line.to_string());
        s.push_str(", \"rule\": \"");
        json_escape(&mut s, f.rule);
        s.push_str("\", \"symbol\": ");
        match &f.symbol {
            Some(sym) => {
                s.push('"');
                json_escape(&mut s, sym);
                s.push('"');
            }
            None => s.push_str("null"),
        }
        s.push_str(", \"message\": \"");
        json_escape(&mut s, &f.message);
        s.push_str("\"}");
    }
    if !findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

fn json_escape(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> String {
        lex(src).iter().map(|l| l.code.clone()).collect::<Vec<_>>().join("\n")
    }

    fn comment_of(src: &str) -> String {
        lex(src).iter().map(|l| l.comment.clone()).collect::<Vec<_>>().join("\n")
    }

    #[test]
    fn lexer_strips_string_contents() {
        let src = r#"let s = "call Instant::now here"; f(s);"#;
        let code = code_of(src);
        assert!(!code.contains("Instant::now"), "string content leaked: {code}");
        assert!(code.contains("let s ="));
        assert!(code.contains("f(s);"));
    }

    #[test]
    fn lexer_strips_raw_and_byte_strings() {
        let src = "let a = r#\"Instant::now \"quoted\" inside\"#; let b = br\"thread_rng\"; g(a, b);";
        let code = code_of(src);
        assert!(!code.contains("Instant::now"));
        assert!(!code.contains("thread_rng"));
        assert!(code.contains("g(a, b);"));
    }

    #[test]
    fn lexer_routes_line_comments_to_comment_channel() {
        let src = "let x = 1; // Instant::now is banned";
        assert!(!code_of(src).contains("Instant::now"));
        assert!(comment_of(src).contains("Instant::now is banned"));
    }

    #[test]
    fn lexer_handles_nested_block_comments() {
        let src = "a(); /* outer /* inner Instant::now */ still comment */ b();";
        let code = code_of(src);
        assert!(!code.contains("Instant::now"));
        assert!(code.contains("a();"));
        assert!(code.contains("b();"));
        assert!(comment_of(src).contains("inner Instant::now"));
    }

    #[test]
    fn lexer_distinguishes_char_literals_from_lifetimes() {
        // A quote char literal must not open a string state that would
        // swallow the following code.
        let src = "let q = '\"'; let esc = '\\''; fn f<'a>(x: &'a str) -> &'a str { x }";
        let code = code_of(src);
        assert!(code.contains("fn f<'a>(x: &'a str)"));
        // And a real string after the char literals is still stripped.
        let src2 = "let c = 'x'; let s = \"Instant::now\"; h(c, s);";
        let code2 = code_of(src2);
        assert!(!code2.contains("Instant::now"));
        assert!(code2.contains("h(c, s);"));
    }

    #[test]
    fn find_word_respects_identifier_boundaries() {
        assert!(find_word("std::collections::HashMap<K, V>", "HashMap"));
        assert!(!find_word("FxHashMap<K, V>", "HashMap"));
        assert!(!find_word("HashMapLike", "HashMap"));
        assert!(find_word("unsafe { x }", "unsafe"));
        assert!(!find_word("#![forbid(unsafe_code)]", "unsafe"));
    }

    #[test]
    fn strings_and_comments_are_never_findings() {
        let cfg = Config::default_repo();
        let src = "//! docs mention Instant::now and thread_rng\n\
                   pub fn f() -> &'static str {\n\
                       /* HashMap in a block comment */\n\
                       \"SystemTime thread::spawn .unwrap() unsafe\"\n\
                   }\n";
        let findings = check_file("crates/storage/src/journal.rs", src, &cfg);
        assert!(findings.is_empty(), "false positives: {findings:?}");
    }

    #[test]
    fn waiver_requires_reason() {
        let cfg = Config::default_repo();
        let with_reason = "// detlint: allow(wall_clock) — reporting only\nlet t = Instant::now();\n";
        assert!(check_file("crates/core/src/x.rs", with_reason, &cfg).is_empty());

        let reasonless = "// detlint: allow(wall_clock)\nlet t = Instant::now();\n";
        let findings = check_file("crates/core/src/x.rs", reasonless, &cfg);
        // The original finding survives AND the empty waiver is reported.
        assert!(findings.iter().any(|f| f.rule == "wall_clock" && f.line == 2));
        assert!(findings.iter().any(|f| f.message.contains("no reason")));
    }

    #[test]
    fn waiver_covers_same_line_and_next_line_only() {
        let cfg = Config::default_repo();
        let same = "let t = Instant::now(); // detlint: allow(wall_clock) — metric\n";
        assert!(check_file("crates/core/src/x.rs", same, &cfg).is_empty());

        let too_far = "// detlint: allow(wall_clock) — metric\n\nlet t = Instant::now();\n";
        let findings = check_file("crates/core/src/x.rs", too_far, &cfg);
        assert_eq!(findings.len(), 1, "waiver two lines up must not apply");
    }

    #[test]
    fn hash_rule_scopes_to_deterministic_crate_src() {
        let cfg = Config::default_repo();
        let src = "use std::collections::HashMap;\n";
        assert!(!check_file("crates/storage/src/x.rs", src, &cfg).is_empty());
        // tests/ of a deterministic crate: out of scope.
        assert!(check_file("crates/storage/tests/x.rs", src, &cfg).is_empty());
        // src/ of a non-deterministic crate: out of scope.
        assert!(check_file("crates/bench/src/x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn hot_path_rule_scopes_to_configured_files() {
        let cfg = Config::default_repo();
        let src = "let x = maybe().unwrap();\n";
        assert!(!check_file("crates/storage/src/journal.rs", src, &cfg).is_empty());
        assert!(check_file("crates/storage/src/world.rs", src, &cfg).is_empty());
    }

    #[test]
    fn allowlists_suppress_findings() {
        let cfg = Config::default_repo();
        let src = "let t = Instant::now();\n";
        assert!(check_file("crates/sim/src/time.rs", src, &cfg).is_empty());
        assert!(!check_file("crates/sim/src/kernel.rs", src, &cfg).is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let cfg = Config::default_repo();
        let bad = "let y = unsafe { f(x) };\n";
        assert_eq!(check_file("crates/core/src/x.rs", bad, &cfg).len(), 1);

        let same_line = "let y = unsafe { f(x) }; // SAFETY: f is total\n";
        assert!(check_file("crates/core/src/x.rs", same_line, &cfg).is_empty());

        let above = "// SAFETY: f is total on u32\nlet y = unsafe { f(x) };\n";
        assert!(check_file("crates/core/src/x.rs", above, &cfg).is_empty());
    }

    #[test]
    fn config_roundtrip_parses_every_section() {
        let toml = r##"
            # comment
            [allow.wall_clock]
            paths = ["crates/sim/src/time.rs"]

            [allow.thread_spawn]
            paths = ["crates/core/src/harness.rs"]

            [rules.hash_collections]
            crates = ["sim", "storage", "core", "minidb", "plugin", "chaos"]

            [rules.hot_path_unwrap]
            paths = [
                "crates/storage/src/journal.rs",
                "crates/minidb/src/wal.rs",
            ]

            [rules.panic_reachable]
            entry_points = ["engine::persist", "Journal::*"]
            max_depth = 7

            [rules.sim_purity]
            entry_points = ["*::dispatch"]
            max_depth = 9
        "##;
        let cfg = parse_config(toml).expect("parses");
        let def = Config::default_repo();
        assert_eq!(cfg.allow, def.allow);
        assert_eq!(
            cfg.deterministic_crates,
            ["sim", "storage", "core", "minidb", "plugin", "chaos"].map(str::to_owned)
        );
        assert_eq!(
            cfg.hot_paths,
            ["crates/storage/src/journal.rs", "crates/minidb/src/wal.rs"].map(str::to_owned)
        );
        assert_eq!(
            cfg.panic_entry_points,
            ["engine::persist", "Journal::*"].map(str::to_owned)
        );
        assert_eq!(cfg.panic_max_depth, 7);
        assert_eq!(cfg.purity_entry_points, ["*::dispatch"].map(str::to_owned));
        assert_eq!(cfg.purity_max_depth, 9);
    }

    #[test]
    fn config_rejects_unknown_rules_and_keys() {
        assert!(parse_config("[allow.made_up]\npaths = [\"x\"]\n").is_err());
        assert!(parse_config("[allow.wall_clock]\nbogus = [\"x\"]\n").is_err());
        assert!(parse_config("[rules.hot_path_unwrap]\npaths = [\"x\"\n").is_err());
        assert!(parse_config("[rules.panic_reachable]\nmax_depth = [\"x\"]\n").is_err());
        assert!(parse_config("[rules.sim_purity]\nentry_points = 3\n").is_err());
    }

    #[test]
    fn json_report_shape() {
        let findings = vec![
            Finding {
                file: "a/b.rs".to_owned(),
                line: 3,
                rule: "wall_clock",
                symbol: None,
                message: "a \"quoted\" message".to_owned(),
            },
            Finding {
                file: "a/c.rs".to_owned(),
                line: 9,
                rule: "panic_reachable",
                symbol: Some("Engine::persist".to_owned()),
                message: "m".to_owned(),
            },
        ];
        let json = render_json(&findings);
        assert!(json.contains("\"total\": 2"));
        assert!(json.contains("\"file\": \"a/b.rs\""));
        assert!(json.contains("\"line\": 3"));
        assert!(json.contains("\"symbol\": null"));
        assert!(json.contains("\"symbol\": \"Engine::persist\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(render_json(&[]).contains("\"total\": 0"));
    }
}
