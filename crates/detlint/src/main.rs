//! `detlint` CLI: lint the workspace, print `file:line: rule — message`
//! diagnostics, exit nonzero when any unwaived finding remains.
//!
//! ```text
//! cargo run -p detlint                 # human-readable, exit 1 on findings
//! cargo run -p detlint -- --fix-list   # JSON report on stdout
//! cargo run -p detlint -- --root DIR   # lint a different workspace root
//! cargo run -p detlint -- --config F   # explicit config file
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/config/IO error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use detlint::{check_workspace, parse_config, render_json, Config};

struct Args {
    fix_list: bool,
    root: Option<PathBuf>,
    config: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        fix_list: false,
        root: None,
        config: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fix-list" => args.fix_list = true,
            "--root" => {
                args.root = Some(PathBuf::from(
                    it.next().ok_or("--root requires a directory argument")?,
                ))
            }
            "--config" => {
                args.config = Some(PathBuf::from(
                    it.next().ok_or("--config requires a file argument")?,
                ))
            }
            "--help" | "-h" => {
                println!(
                    "detlint — determinism & safety lint\n\n\
                     USAGE: detlint [--fix-list] [--root DIR] [--config FILE]\n\n\
                     --fix-list   emit a machine-readable JSON report on stdout\n\
                     --root DIR   workspace root to lint (default: auto-discover)\n\
                     --config F   config file (default: <root>/detlint.toml)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Find the workspace root: walk up from the current directory looking for
/// `detlint.toml`, falling back to the source checkout this binary was
/// built from (`CARGO_MANIFEST_DIR/../..`).
fn discover_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("detlint.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            break;
        }
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let root = args.root.unwrap_or_else(discover_root);
    if !root.is_dir() {
        return Err(format!("workspace root `{}` is not a directory", root.display()));
    }

    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| root.join("detlint.toml"));
    let config = if config_path.is_file() {
        let text = std::fs::read_to_string(&config_path)
            .map_err(|e| format!("reading `{}`: {e}", config_path.display()))?;
        parse_config(&text).map_err(|e| format!("`{}`: {e}", config_path.display()))?
    } else if args.config.is_some() {
        return Err(format!("config file `{}` not found", config_path.display()));
    } else {
        Config::default_repo()
    };

    let findings =
        check_workspace(&root, &config).map_err(|e| format!("walking `{}`: {e}", root.display()))?;

    if args.fix_list {
        print!("{}", render_json(&findings));
    } else {
        for f in &findings {
            println!("{f}");
        }
        if findings.is_empty() {
            eprintln!("detlint: clean");
        } else {
            eprintln!(
                "detlint: {} finding{} — fix, waive with \
                 `// detlint: allow(rule) — reason`, or allowlist in detlint.toml",
                findings.len(),
                if findings.len() == 1 { "" } else { "s" }
            );
        }
    }
    Ok(findings.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("detlint: error: {e}");
            ExitCode::from(2)
        }
    }
}
