//! `detlint` CLI: analyze the workspace, print `file:line: rule — message`
//! diagnostics, diff flow-rule findings against `detlint.lock`, exit
//! nonzero when anything new (or stale) remains.
//!
//! ```text
//! cargo run -p detlint                      # full analysis + ratchet, exit 1 on new findings
//! cargo run -p detlint -- --fix-list        # JSON report on stdout
//! cargo run -p detlint -- --update-lock     # burn fixed debt out of detlint.lock
//! cargo run -p detlint -- --update-lock --grow   # deliberately accept new debt
//! cargo run -p detlint -- graph --dot       # call graph as DOT on stdout
//! cargo run -p detlint -- graph --symbols   # symbol table, one line per fn
//! cargo run -p detlint -- --root DIR        # analyze a different workspace root
//! cargo run -p detlint -- --config F        # explicit config file
//! cargo run -p detlint -- --lock F          # explicit lock file
//! ```
//!
//! Exit codes: 0 clean, 1 findings/stale lock, 2 usage/config/IO error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use detlint::lock::{self, Lock};
use detlint::{analyze_workspace, parse_config, render_json, Config};

struct Args {
    /// `detlint graph …` subcommand: emit the call graph instead of linting.
    graph: Option<GraphMode>,
    fix_list: bool,
    update_lock: bool,
    grow: bool,
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    lock: Option<PathBuf>,
    out: Option<PathBuf>,
}

enum GraphMode {
    Dot,
    Symbols,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        graph: None,
        fix_list: false,
        update_lock: false,
        grow: false,
        root: None,
        config: None,
        lock: None,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "graph" => {
                // Default to DOT; `--symbols` switches.
                if args.graph.is_none() {
                    args.graph = Some(GraphMode::Dot);
                }
            }
            "--dot" => args.graph = Some(GraphMode::Dot),
            "--symbols" => args.graph = Some(GraphMode::Symbols),
            "--out" => {
                args.out = Some(PathBuf::from(
                    it.next().ok_or("--out requires a file argument")?,
                ))
            }
            "--fix-list" => args.fix_list = true,
            "--update-lock" => args.update_lock = true,
            "--grow" => args.grow = true,
            "--root" => {
                args.root = Some(PathBuf::from(
                    it.next().ok_or("--root requires a directory argument")?,
                ))
            }
            "--config" => {
                args.config = Some(PathBuf::from(
                    it.next().ok_or("--config requires a file argument")?,
                ))
            }
            "--lock" => {
                args.lock = Some(PathBuf::from(
                    it.next().ok_or("--lock requires a file argument")?,
                ))
            }
            "--help" | "-h" => {
                println!(
                    "detlint — determinism & safety analysis\n\n\
                     USAGE: detlint [graph --dot|--symbols] [--fix-list] [--update-lock [--grow]]\n\
                            [--root DIR] [--config FILE] [--lock FILE] [--out FILE]\n\n\
                     (no subcommand)  full analysis; flow findings ratchet against detlint.lock\n\
                     graph --dot      emit the workspace call graph as Graphviz DOT\n\
                     graph --symbols  emit the symbol table, one `fn` per line\n\
                     --fix-list       emit a machine-readable JSON report on stdout\n\
                     --update-lock    rewrite detlint.lock from current findings (shrink-only)\n\
                     --grow           allow --update-lock to ADD entries (deliberate debt)\n\
                     --root DIR       workspace root (default: auto-discover)\n\
                     --config F       config file (default: <root>/detlint.toml)\n\
                     --lock F         lock file (default: <root>/detlint.lock)\n\
                     --out F          write graph output to F instead of stdout"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.grow && !args.update_lock {
        return Err("--grow only makes sense with --update-lock".to_owned());
    }
    Ok(args)
}

/// Find the workspace root: walk up from the current directory looking for
/// `detlint.toml`, falling back to the source checkout this binary was
/// built from (`CARGO_MANIFEST_DIR/../..`).
fn discover_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("detlint.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            break;
        }
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let root = args.root.clone().unwrap_or_else(discover_root);
    if !root.is_dir() {
        return Err(format!("workspace root `{}` is not a directory", root.display()));
    }

    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| root.join("detlint.toml"));
    let config = if config_path.is_file() {
        let text = std::fs::read_to_string(&config_path)
            .map_err(|e| format!("reading `{}`: {e}", config_path.display()))?;
        parse_config(&text).map_err(|e| format!("`{}`: {e}", config_path.display()))?
    } else if args.config.is_some() {
        return Err(format!("config file `{}` not found", config_path.display()));
    } else {
        Config::default_repo()
    };

    let analysis = analyze_workspace(&root, &config)
        .map_err(|e| format!("analyzing `{}`: {e}", root.display()))?;

    if let Some(mode) = &args.graph {
        let rendered = match mode {
            GraphMode::Dot => analysis.graph.render_dot(),
            GraphMode::Symbols => analysis.graph.render_symbols(),
        };
        match &args.out {
            Some(path) => std::fs::write(path, rendered)
                .map_err(|e| format!("writing `{}`: {e}", path.display()))?,
            None => print!("{rendered}"),
        }
        return Ok(true);
    }

    let lock_path = args.lock.clone().unwrap_or_else(|| root.join("detlint.lock"));
    let lock = if lock_path.is_file() {
        let text = std::fs::read_to_string(&lock_path)
            .map_err(|e| format!("reading `{}`: {e}", lock_path.display()))?;
        lock::parse_lock(&text).map_err(|e| format!("`{}`: {e}", lock_path.display()))?
    } else if args.lock.is_some() {
        return Err(format!("lock file `{}` not found", lock_path.display()));
    } else {
        Lock::default()
    };

    if args.update_lock {
        let entries = lock::updated_lock(&analysis.findings, &lock, args.grow)?;
        let burned = lock.entries.len().saturating_sub(entries.len());
        std::fs::write(&lock_path, lock::render_lock(&entries))
            .map_err(|e| format!("writing `{}`: {e}", lock_path.display()))?;
        eprintln!(
            "detlint: wrote `{}` — {} entr{}{}",
            lock_path.display(),
            entries.len(),
            if entries.len() == 1 { "y" } else { "ies" },
            if burned > 0 {
                format!(" ({burned} burned down)")
            } else {
                String::new()
            }
        );
        // The hard-fail rules are still enforced even while updating.
        let hard: Vec<_> = analysis
            .findings
            .iter()
            .filter(|f| !lock::is_ratcheted(f))
            .collect();
        for f in &hard {
            println!("{f}");
        }
        return Ok(hard.is_empty());
    }

    let report = lock::ratchet(&analysis.findings, &lock);

    if args.fix_list {
        print!("{}", render_json(&report.new));
        return Ok(report.is_clean());
    }

    for f in &report.new {
        println!("{f}");
    }
    for fp in &report.stale {
        println!("detlint.lock: stale entry `{}`", fp.replace('\t', " "));
    }
    if report.is_clean() {
        eprintln!(
            "detlint: clean ({} baselined finding{} in detlint.lock)",
            report.baselined,
            if report.baselined == 1 { "" } else { "s" }
        );
    } else {
        if !report.new.is_empty() {
            eprintln!(
                "detlint: {} new finding{} — fix, waive with \
                 `// detlint: allow(rule) — reason`, or allowlist in detlint.toml",
                report.new.len(),
                if report.new.len() == 1 { "" } else { "s" }
            );
        }
        if !report.stale.is_empty() {
            eprintln!(
                "detlint: {} stale lock entr{} — run `detlint --update-lock` \
                 to burn fixed debt out of detlint.lock",
                report.stale.len(),
                if report.stale.len() == 1 { "y" } else { "ies" }
            );
        }
    }
    Ok(report.is_clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("detlint: error: {e}");
            ExitCode::from(2)
        }
    }
}
