//! The findings ratchet: `detlint.lock`.
//!
//! New flow rules landing against an old tree would either block every PR
//! or get allowlisted wholesale. The lock does neither: it snapshots the
//! *accepted* findings by stable fingerprint and CI enforces two things —
//!
//! 1. **no new findings**: a finding whose fingerprint is not in the lock
//!    fails the build (fix it, or waive it inline with a reason);
//! 2. **no stale lock**: a lock entry with no surviving finding fails the
//!    build too, with instructions to run `detlint --update-lock` — so
//!    fixed debt is *burned* out of the lock and can never silently come
//!    back.
//!
//! `detlint --update-lock` only ever shrinks the lock (monotone ratchet);
//! growing it requires the deliberate `--grow` flag, which a reviewer will
//! see in the PR that adds it.
//!
//! Fingerprints are `rule + path + symbol` — never line numbers, so
//! unrelated edits to a file don't churn the lock.

use std::collections::BTreeSet;

use crate::Finding;

/// The rules whose findings are ratcheted (everything the call-graph
/// analyzer produces). The six token rules stay hard-fail: the tree is
/// already clean under them and must stay clean.
pub const RATCHETED_RULES: [&str; 3] = ["panic_reachable", "sim_purity", "float_ordering"];

/// Is this finding subject to the lock?
pub fn is_ratcheted(f: &Finding) -> bool {
    RATCHETED_RULES.contains(&f.rule)
}

/// A finding's stable fingerprint: `rule<TAB>path<TAB>symbol`.
pub fn fingerprint(f: &Finding) -> String {
    format!(
        "{}\t{}\t{}",
        f.rule,
        f.file,
        f.symbol.as_deref().unwrap_or("-")
    )
}

/// Parsed lock: the set of accepted fingerprints.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Lock {
    /// Accepted fingerprints, sorted (BTreeSet iteration order).
    pub entries: BTreeSet<String>,
}

/// Outcome of diffing current findings against the lock.
#[derive(Debug, Clone, Default)]
pub struct RatchetReport {
    /// Findings whose fingerprint is NOT in the lock — these fail CI.
    pub new: Vec<Finding>,
    /// Lock entries with no surviving finding — a stale lock fails CI
    /// until `--update-lock` burns them down.
    pub stale: Vec<String>,
    /// Number of findings covered by the lock (accepted debt).
    pub baselined: usize,
}

impl RatchetReport {
    /// Clean means: nothing new, nothing stale.
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }
}

/// Parse a lock file. Format: `# comment` lines and one
/// `rule<TAB>path<TAB>symbol` fingerprint per line.
pub fn parse_lock(text: &str) -> Result<Lock, String> {
    let mut entries = BTreeSet::new();
    for (n, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 3 {
            return Err(format!(
                "detlint.lock:{}: expected `rule<TAB>path<TAB>symbol`, got `{line}`",
                n + 1
            ));
        }
        if !RATCHETED_RULES.contains(&fields[0]) {
            return Err(format!(
                "detlint.lock:{}: `{}` is not a ratcheted rule",
                n + 1,
                fields[0]
            ));
        }
        entries.insert(line.to_owned());
    }
    Ok(Lock { entries })
}

/// Render a lock from the given fingerprints (sorted, commented header).
pub fn render_lock(entries: &BTreeSet<String>) -> String {
    let mut s = String::from(
        "# detlint.lock — ratcheted findings baseline (DESIGN.md \u{a7}12).\n\
         #\n\
         # One accepted finding per line: rule<TAB>path<TAB>symbol. CI fails on\n\
         # any finding NOT in this file (fix it or waive it inline with a\n\
         # reason) and on any entry here with no surviving finding (run\n\
         # `detlint --update-lock` to burn fixed debt down). `--update-lock`\n\
         # refuses to ADD entries unless given `--grow` — the ratchet only\n\
         # tightens.\n",
    );
    for e in entries {
        s.push_str(e);
        s.push('\n');
    }
    s
}

/// Diff `findings` (all rules) against the lock. Non-ratcheted findings
/// pass through as `new` (they are hard-fail regardless of the lock).
pub fn ratchet(findings: &[Finding], lock: &Lock) -> RatchetReport {
    let mut report = RatchetReport::default();
    let mut live: BTreeSet<String> = BTreeSet::new();
    for f in findings {
        if !is_ratcheted(f) {
            report.new.push(f.clone());
            continue;
        }
        let fp = fingerprint(f);
        if lock.entries.contains(&fp) {
            report.baselined += 1;
            live.insert(fp);
        } else {
            report.new.push(f.clone());
        }
    }
    for e in &lock.entries {
        if !live.contains(e) {
            report.stale.push(e.clone());
        }
    }
    report
}

/// Compute the updated lock for `--update-lock`: current ratcheted
/// fingerprints. Errors when the update would *grow* the lock (new
/// fingerprints not already accepted) unless `grow` is set.
pub fn updated_lock(findings: &[Finding], old: &Lock, grow: bool) -> Result<BTreeSet<String>, String> {
    let current: BTreeSet<String> = findings
        .iter()
        .filter(|f| is_ratcheted(f))
        .map(fingerprint)
        .collect();
    let added: Vec<&String> = current.difference(&old.entries).collect();
    if !added.is_empty() && !grow {
        return Err(format!(
            "--update-lock would ADD {} finding(s) to the baseline; the ratchet \
             only tightens. Fix them, waive them inline with a reason, or — if \
             this debt is genuinely being accepted — rerun with --grow:\n{}",
            added.len(),
            added
                .iter()
                .map(|s| format!("  {}", s.replace('\t', " ")))
                .collect::<Vec<_>>()
                .join("\n")
        ));
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &'static str, file: &str, symbol: &str) -> Finding {
        Finding {
            file: file.to_owned(),
            line: 1,
            rule,
            symbol: Some(symbol.to_owned()),
            message: "m".to_owned(),
        }
    }

    #[test]
    fn lock_roundtrips() {
        let mut entries = BTreeSet::new();
        entries.insert(fingerprint(&f("panic_reachable", "crates/a/src/x.rs", "X::m")));
        let text = render_lock(&entries);
        let lock = parse_lock(&text).expect("parses");
        assert_eq!(lock.entries, entries);
    }

    #[test]
    fn baselined_findings_do_not_fail() {
        let finding = f("panic_reachable", "crates/a/src/x.rs", "X::m");
        let lock = Lock {
            entries: [fingerprint(&finding)].into(),
        };
        let r = ratchet(&[finding], &lock);
        assert!(r.is_clean());
        assert_eq!(r.baselined, 1);
    }

    #[test]
    fn new_findings_fail() {
        let r = ratchet(&[f("sim_purity", "crates/a/src/x.rs", "X::m")], &Lock::default());
        assert_eq!(r.new.len(), 1);
        assert!(!r.is_clean());
    }

    #[test]
    fn line_moves_do_not_churn_the_fingerprint() {
        let mut a = f("panic_reachable", "crates/a/src/x.rs", "X::m");
        let mut b = a.clone();
        a.line = 10;
        b.line = 999;
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn stale_entries_fail_until_burned() {
        let gone = fingerprint(&f("panic_reachable", "crates/a/src/x.rs", "X::m"));
        let lock = Lock {
            entries: [gone.clone()].into(),
        };
        let r = ratchet(&[], &lock);
        assert_eq!(r.stale, [gone]);
        assert!(!r.is_clean());
        // --update-lock burns it down.
        let updated = updated_lock(&[], &lock, false).expect("shrinking is fine");
        assert!(updated.is_empty());
    }

    #[test]
    fn update_lock_refuses_to_grow_without_flag() {
        let finding = f("panic_reachable", "crates/a/src/x.rs", "X::m");
        assert!(updated_lock(&[finding.clone()], &Lock::default(), false).is_err());
        let grown = updated_lock(&[finding.clone()], &Lock::default(), true).expect("--grow");
        assert_eq!(grown.len(), 1);
    }

    #[test]
    fn non_ratcheted_rules_bypass_the_lock() {
        let legacy = Finding {
            file: "crates/a/src/x.rs".to_owned(),
            line: 3,
            rule: "wall_clock",
            symbol: None,
            message: "m".to_owned(),
        };
        let r = ratchet(&[legacy], &Lock::default());
        assert_eq!(r.new.len(), 1, "legacy findings stay hard-fail");
    }

    #[test]
    fn malformed_locks_are_rejected() {
        assert!(parse_lock("panic_reachable only-two-fields\n").is_err());
        assert!(parse_lock("made_up\ta\tb\n").is_err());
        assert!(parse_lock("# just comments\n\n").expect("ok").entries.is_empty());
    }
}
