//! Flow-aware rules on top of the call graph: `panic_reachable`,
//! `sim_purity`, `float_ordering`.
//!
//! These are the v2 rules (DESIGN.md §12). Unlike the token rules they
//! reason about *reachability*: a panic source is only a finding when the
//! replication hot path can actually arrive at it, and an ambient-state
//! touch is only a finding when a kernel event handler can. Because the
//! resolution is conservative (see [`crate::graph`]), findings carry the
//! shortest call chain from the entry point so a reviewer can judge the
//! edge that got them there.
//!
//! Findings from these rules are fingerprinted by **rule + file + symbol**
//! (never line numbers) and ratcheted against `detlint.lock` — see
//! [`crate::lock`].

use crate::graph::CallGraph;
use crate::parse::{FileSymbols, SiteKind};
use crate::{Config, Finding};

/// Run `panic_reachable`: any panic source within `max_depth` call edges
/// of a configured replication entry point is a finding.
pub fn panic_reachable(graph: &CallGraph, config: &Config) -> Vec<Finding> {
    let mut roots = Vec::new();
    for pat in &config.panic_entry_points {
        roots.extend(graph.match_pattern(pat));
    }
    roots.sort_unstable();
    roots.dedup();
    let reach = graph.reach(&roots, config.panic_max_depth);
    let mut out = Vec::new();
    for (&node, &(depth, _)) in &reach {
        let f = &graph.fns[node];
        for site in &f.sites {
            if !site.kind.is_panic() {
                continue;
            }
            // `.expect("invariant: …")` never reaches here (the parser
            // drops sanctioned expects); PartialCmpUnwrap is reported by
            // float_ordering, not twice.
            if site.kind == SiteKind::PartialCmpUnwrap {
                continue;
            }
            out.push(Finding {
                file: f.file.clone(),
                line: site.line,
                rule: "panic_reachable",
                symbol: Some(f.qualified()),
                message: format!(
                    "`{}` can panic on the replication hot path — {} call edge{} \
                     from an entry point ({}); return a typed error or assert the \
                     invariant with `expect(\"invariant: …\")`",
                    site.kind.label(),
                    depth,
                    if depth == 1 { "" } else { "s" },
                    graph.chain(&reach, node),
                ),
            });
        }
    }
    out
}

/// Run `sim_purity`: functions reachable from kernel event handlers must
/// not touch ambient state (`std::fs`/`net`/`process`/`env`, stdio) —
/// the sim world stays hermetic, so identical seeds give identical runs.
pub fn sim_purity(graph: &CallGraph, config: &Config) -> Vec<Finding> {
    let mut roots = Vec::new();
    for pat in &config.purity_entry_points {
        roots.extend(graph.match_pattern(pat));
    }
    roots.sort_unstable();
    roots.dedup();
    let reach = graph.reach(&roots, config.purity_max_depth);
    let mut out = Vec::new();
    for (&node, &(depth, _)) in &reach {
        let f = &graph.fns[node];
        for site in &f.sites {
            let SiteKind::Ambient(pat) = &site.kind else {
                continue;
            };
            out.push(Finding {
                file: f.file.clone(),
                line: site.line,
                rule: "sim_purity",
                symbol: Some(f.qualified()),
                message: format!(
                    "`{pat}` touches ambient state {depth} call edge{} from a \
                     kernel event handler ({}); the sim world must stay hermetic — \
                     thread the effect through the world state instead",
                    if depth == 1 { "" } else { "s" },
                    graph.chain(&reach, node),
                ),
            });
        }
    }
    out
}

/// Run `float_ordering` over per-file parses: no `f32`/`f64` in `Ord`
/// ordering positions or digest/export-reachable state.
///
/// - a struct with float fields deriving `Ord`/`PartialOrd`/`Hash`;
/// - a manual `impl Ord`/`impl PartialOrd` for a struct with float fields;
/// - `BTreeMap`/`BTreeSet` keyed by `f32`/`f64`;
/// - `.partial_cmp(…).unwrap()/.expect(…)` comparison chains (NaN panics
///   *and* unstable ordering in one expression).
///
/// Scope: the deterministic crates (the same list as `hash_collections`)
/// — float state elsewhere (report formatting, benches) is fine.
pub fn float_ordering(files: &[(String, FileSymbols)], config: &Config) -> Vec<Finding> {
    let in_scope = |path: &str| {
        path.contains("/src/")
            && crate::crate_of(path)
                .is_some_and(|c| config.deterministic_crates.iter().any(|d| d == c))
    };
    let mut out = Vec::new();
    for (path, syms) in files {
        if !in_scope(path) {
            continue;
        }
        for st in &syms.structs {
            if st.float_field_lines.is_empty() {
                continue;
            }
            for d in &st.derives {
                if d == "Ord" || d == "PartialOrd" || d == "Hash" {
                    out.push(Finding {
                        file: path.clone(),
                        line: st.line,
                        rule: "float_ordering",
                        symbol: Some(st.name.clone()),
                        message: format!(
                            "struct `{}` has float fields but derives `{d}`; float \
                             ordering is partial (NaN) and bit-unstable across \
                             targets — key on integers or fixed-point",
                            st.name
                        ),
                    });
                }
            }
            for (ty, line, total) in &syms.ord_impls {
                if ty == &st.name {
                    out.push(Finding {
                        file: path.clone(),
                        line: *line,
                        rule: "float_ordering",
                        symbol: Some(st.name.clone()),
                        message: format!(
                            "`impl {}` for `{}`, which has float fields; digest/\
                             export-reachable ordering must not depend on float \
                             comparison",
                            if *total { "Ord" } else { "PartialOrd" },
                            st.name
                        ),
                    });
                }
            }
        }
        for f in &syms.fns {
            for site in &f.sites {
                if site.kind == SiteKind::PartialCmpUnwrap {
                    out.push(Finding {
                        file: path.clone(),
                        line: site.line,
                        rule: "float_ordering",
                        symbol: Some(f.qualified()),
                        message: "`.partial_cmp(…).unwrap()` panics on NaN and \
                                  encodes a partial order; use `total_cmp` or \
                                  integer keys"
                            .to_owned(),
                    });
                }
            }
        }
    }
    out
}

/// Scan token streams for float-keyed ordered collections
/// (`BTreeMap<f64, …>` / `BTreeSet<f32>`). Token-level, not parser-level:
/// these appear in type positions the item parser skips.
pub fn float_keyed_collections(path: &str, toks: &[crate::token::Tok], config: &Config) -> Vec<Finding> {
    let in_scope = path.contains("/src/")
        && crate::crate_of(path)
            .is_some_and(|c| config.deterministic_crates.iter().any(|d| d == c));
    if !in_scope {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if name != "BTreeMap" && name != "BTreeSet" {
            continue;
        }
        // `BTreeMap < f64` — the first generic parameter is the key.
        if toks.get(i + 1).is_some_and(|t| t.is_punct('<'))
            && toks
                .get(i + 2)
                .and_then(|t| t.ident())
                .is_some_and(|k| k == "f32" || k == "f64")
        {
            out.push(Finding {
                file: path.to_owned(),
                line: t.line,
                rule: "float_ordering",
                symbol: Some(name.to_owned()),
                message: format!(
                    "`{name}` keyed by a float; float keys have no total order — \
                     use integer or fixed-point keys"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CallGraph;
    use crate::parse::parse_file;
    use crate::token::tokenize;

    fn cfg() -> Config {
        let mut c = Config::default_repo();
        c.panic_entry_points = vec!["engine::persist".to_owned()];
        c.purity_entry_points = vec!["*::dispatch".to_owned()];
        c.deterministic_crates = vec!["demo".to_owned()];
        c
    }

    fn build(files: &[(&str, &str)]) -> (CallGraph, Vec<(String, FileSymbols)>) {
        let mut fns = Vec::new();
        let mut parsed = Vec::new();
        for (path, src) in files {
            let syms = parse_file(path, "demo", &tokenize(src));
            fns.extend(syms.fns.clone());
            parsed.push((path.to_string(), syms));
        }
        (CallGraph::build(fns), parsed)
    }

    #[test]
    fn panic_outside_reach_is_not_reported() {
        let (g, _) = build(&[(
            "crates/demo/src/engine.rs",
            "pub fn persist() { safe(); }\n\
             fn safe() {}\n\
             fn cold() { x.unwrap(); }\n",
        )]);
        assert!(panic_reachable(&g, &cfg()).is_empty());
    }

    #[test]
    fn panic_within_reach_is_reported_with_chain() {
        let (g, _) = build(&[(
            "crates/demo/src/engine.rs",
            "pub fn persist() { step(); }\n\
             fn step() { deep(); }\n\
             fn deep() { x.unwrap(); }\n",
        )]);
        let f = panic_reachable(&g, &cfg());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].symbol.as_deref(), Some("engine::deep"));
        assert!(f[0].message.contains("persist -> engine::step -> engine::deep"),
            "chain missing: {}", f[0].message);
    }

    #[test]
    fn invariant_expects_are_sanctioned() {
        let (g, _) = build(&[(
            "crates/demo/src/engine.rs",
            "pub fn persist() { j.space().expect(\"invariant: space was checked in pass 1\"); }\n",
        )]);
        assert!(panic_reachable(&g, &cfg()).is_empty());
    }

    #[test]
    fn depth_limit_is_respected() {
        let mut src = String::from("pub fn persist() { f0(); }\n");
        for i in 0..20 {
            src.push_str(&format!("fn f{i}() {{ f{}(); }}\n", i + 1));
        }
        src.push_str("fn f20() { x.unwrap(); }\n");
        let (g, _) = build(&[("crates/demo/src/engine.rs", src.as_str())]);
        let mut c = cfg();
        c.panic_max_depth = 5;
        assert!(panic_reachable(&g, &c).is_empty());
        c.panic_max_depth = 30;
        assert_eq!(panic_reachable(&g, &c).len(), 1);
    }

    #[test]
    fn ambient_touch_from_dispatch_is_reported() {
        let (g, _) = build(&[(
            "crates/demo/src/event.rs",
            "impl StorageOp { pub fn dispatch(self) { helper(); } }\n\
             fn helper() { let _ = std::fs::read_to_string(\"x\"); }\n",
        )]);
        let f = sim_purity(&g, &cfg());
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("fs::"));
    }

    #[test]
    fn float_struct_rules_fire() {
        let (_, parsed) = build(&[(
            "crates/demo/src/state.rs",
            "#[derive(PartialOrd)]\npub struct Lag { pub secs: f64 }\n\
             impl Ord for Score { fn cmp(&self) {} }\n\
             pub struct Score { v: f32 }\n\
             fn f() { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n",
        )]);
        let f = float_ordering(&parsed, &cfg());
        let rules: Vec<&str> = f.iter().filter_map(|x| x.symbol.as_deref()).collect();
        assert!(rules.contains(&"Lag"));
        assert!(rules.contains(&"Score"));
        assert!(f.iter().any(|x| x.message.contains("partial_cmp")));
    }

    #[test]
    fn float_keyed_btreemap_is_flagged() {
        let toks = tokenize("pub type M = BTreeMap<f64, u64>;\npub type S = BTreeSet<u64>;\n");
        let f = float_keyed_collections("crates/demo/src/m.rs", &toks, &cfg());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }
}
