//! Parser & call-graph corpus: the item parser against the Rust shapes
//! that show up in this workspace (impl blocks, trait default methods,
//! closures, macro invocations, raw identifiers, shadowed names), plus
//! property tests that the front end is total and the graph build is
//! deterministic on arbitrary input.
//!
//! The corpus here is inline (not `fixtures/`) because these sources are
//! *valid* Rust the walker may safely see; the fixtures directory is for
//! rule-violating material.

#![forbid(unsafe_code)]

use detlint::graph::CallGraph;
use detlint::parse::{parse_file, SiteKind};
use detlint::token::tokenize;
use proptest::prelude::*;

fn parse(src: &str) -> detlint::parse::FileSymbols {
    parse_file("crates/demo/src/engine.rs", "demo", &tokenize(src))
}

fn graph_of(files: &[(&str, &str)]) -> CallGraph {
    let mut fns = Vec::new();
    for (path, src) in files {
        fns.extend(parse_file(path, "demo", &tokenize(src)).fns);
    }
    CallGraph::build(fns)
}

// ---------------------------------------------------------------------------
// Corpus
// ---------------------------------------------------------------------------

#[test]
fn impl_blocks_attribute_methods_to_their_type() {
    let s = parse(
        "pub struct Journal { seq: u64 }\n\
         impl Journal {\n\
             pub fn append(&mut self) { self.grow(); }\n\
             fn grow(&mut self) {}\n\
         }\n\
         impl Default for Journal {\n\
             fn default() -> Self { Journal { seq: 0 } }\n\
         }\n",
    );
    let names: Vec<String> = s.fns.iter().map(|f| f.qualified()).collect();
    assert_eq!(names, ["Journal::append", "Journal::grow", "Journal::default"]);
}

#[test]
fn trait_default_methods_belong_to_the_trait() {
    let s = parse(
        "trait Pump {\n\
             fn kick(&self) { self.run_once(); }\n\
             fn run_once(&self);\n\
         }\n",
    );
    // The default body is parsed; the bodiless signature is still a symbol
    // (it can be a call target) with no calls of its own.
    let kick = s.fns.iter().find(|f| f.name == "kick").expect("kick parsed");
    assert_eq!(kick.qualified(), "Pump::kick");
    assert_eq!(kick.calls.len(), 1);
    assert_eq!(kick.calls[0].name, "run_once");
}

#[test]
fn closure_bodies_are_attributed_to_the_enclosing_fn() {
    let s = parse(
        "fn drain(xs: Vec<Option<u64>>) -> Vec<u64> {\n\
             xs.into_iter().map(|x| x.unwrap()).collect()\n\
         }\n",
    );
    assert_eq!(s.fns.len(), 1);
    assert!(
        s.fns[0].sites.iter().any(|st| st.kind == SiteKind::Unwrap),
        "unwrap inside the closure must land on `drain`: {:?}",
        s.fns[0].sites
    );
}

#[test]
fn macro_invocations_flag_panics_and_keep_scanning_arguments() {
    let s = parse(
        "fn f() {\n\
             if broken() { panic!(\"boom {}\", 1); }\n\
             let v = vec![build_entry()];\n\
             drop(v);\n\
         }\n",
    );
    let f = &s.fns[0];
    assert!(
        f.sites
            .iter()
            .any(|st| st.kind == SiteKind::PanicMacro("panic".to_owned())),
        "panic! not flagged: {:?}",
        f.sites
    );
    // Calls inside macro arguments still count as edges.
    let calls: Vec<&str> = f.calls.iter().map(|c| c.name.as_str()).collect();
    assert!(calls.contains(&"broken"));
    assert!(calls.contains(&"build_entry"));
}

#[test]
fn raw_identifiers_parse_as_their_bare_name() {
    let s = parse(
        "pub fn r#type() -> u64 { 1 }\n\
         fn caller() -> u64 { r#type() }\n",
    );
    let names: Vec<&str> = s.fns.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(names, ["type", "caller"]);
    assert_eq!(s.fns[1].calls[0].name, "type");
}

#[test]
fn shadowed_names_resolve_by_container() {
    // Two `apply` symbols: a free fn and a method. A qualified call picks
    // the container's; a bare call links the free fns; a method call links
    // the methods.
    let g = graph_of(&[
        (
            "crates/demo/src/engine.rs",
            "pub fn persist() { Batch::apply(b); }\n\
             pub fn flush() { apply(); }\n\
             pub fn drain(b: Batch) { b.apply(); }\n\
             fn apply() {}\n",
        ),
        (
            "crates/demo/src/batch.rs",
            "impl Batch { pub fn apply(&self) {} }\n",
        ),
    ]);
    let method = g.match_pattern("Batch::apply");
    assert_eq!(method.len(), 1);
    let free = g.match_pattern("engine::apply");
    assert_eq!(free.len(), 1);
    assert_ne!(method[0], free[0]);

    // persist -> Batch::apply (qualified), not the free fn.
    let persist = g.match_pattern("engine::persist");
    let reach = g.reach(&persist, 5);
    assert!(reach.contains_key(&method[0]), "qualified call missed the method");
    assert!(!reach.contains_key(&free[0]), "qualified call leaked to the free fn");

    // flush -> free apply (bare call).
    let flush = g.match_pattern("engine::flush");
    let reach = g.reach(&flush, 5);
    assert!(reach.contains_key(&free[0]), "bare call missed the free fn");

    // drain -> Batch::apply (method call, conservative over all methods of
    // that name — here there is exactly one).
    let drain = g.match_pattern("engine::drain");
    let reach = g.reach(&drain, 5);
    assert!(reach.contains_key(&method[0]), "method call missed the method");
}

#[test]
fn test_modules_never_reach_the_symbol_table() {
    let s = parse(
        "pub fn real() {}\n\
         #[cfg(test)]\n\
         mod tests {\n\
             pub fn apply() { x.unwrap(); }\n\
         }\n",
    );
    let names: Vec<&str> = s.fns.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(names, ["real"], "test helpers must not pollute the graph");
}

#[test]
fn dot_output_is_stable_and_names_panic_nodes() {
    let g = graph_of(&[(
        "crates/demo/src/engine.rs",
        "pub fn persist() { step(); }\n\
         fn step() { x.unwrap(); }\n",
    )]);
    let dot = g.render_dot();
    assert_eq!(dot, g.render_dot(), "DOT render must be deterministic");
    assert!(dot.contains("digraph"));
    assert!(dot.contains("engine::persist"));
    assert!(dot.contains("engine::step"));
    // Panic-site nodes are visually marked.
    assert!(dot.contains("#ffdddd"), "panic fill missing:\n{dot}");
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

/// Arbitrary unicode text (the vendored proptest has no string strategies,
/// so text is assembled from raw code points; invalid ones map to U+FFFD).
fn any_text() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u32>(), 0..200).prop_map(|cps| {
        cps.into_iter()
            .map(|cp| char::from_u32(cp).unwrap_or('\u{fffd}'))
            .collect()
    })
}

/// Rust-ish token soup: denser in the punctuation that drives the
/// parser's state machine (generics, attributes, strings, macros).
fn rustish_soup(max_len: usize) -> impl Strategy<Value = String> {
    const ALPHABET: &[u8] = b"abcdefgXYZ0189_:;(){}[]<>.,#\"'!&|=/* \n-";
    prop::collection::vec(0usize..ALPHABET.len(), 0..max_len)
        .prop_map(|ix| ix.into_iter().map(|i| ALPHABET[i] as char).collect())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// The tokenizer and parser are total: any string — not just valid
    /// Rust — parses without panicking, and parsing is a pure function.
    #[test]
    fn parser_is_total_and_deterministic_on_arbitrary_text(src in any_text()) {
        let a = parse_file("crates/demo/src/soup.rs", "demo", &tokenize(&src));
        let b = parse_file("crates/demo/src/soup.rs", "demo", &tokenize(&src));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn parser_survives_rustish_token_soup(src in rustish_soup(400)) {
        let syms = parse_file("crates/demo/src/soup.rs", "demo", &tokenize(&src));
        // Graph construction on whatever came out is total and stable too.
        let g1 = CallGraph::build(syms.fns.clone());
        let g2 = CallGraph::build(syms.fns.clone());
        prop_assert_eq!(g1.fns, g2.fns);
        prop_assert_eq!(g1.edges, g2.edges);
    }

    /// Reachability never escapes its depth bound and never invents nodes.
    #[test]
    fn reach_respects_bounds_on_arbitrary_soup(
        src in rustish_soup(300),
        depth in 0usize..6,
    ) {
        let syms = parse_file("crates/demo/src/soup.rs", "demo", &tokenize(&src));
        let g = CallGraph::build(syms.fns);
        let roots: Vec<usize> = (0..g.fns.len().min(3)).collect();
        let reach = g.reach(&roots, depth);
        for (&node, &(d, _)) in &reach {
            prop_assert!(node < g.fns.len());
            prop_assert!(d <= depth);
        }
    }
}
