//! Integration tests: every rule has a flagged, a waived, and a clean
//! fixture under `tests/fixtures/<rule>/`; the workspace walk flags an
//! injected violation; and the real repo itself analyzes ratchet-clean
//! under the shipped `detlint.toml` + `detlint.lock`.
//!
//! Fixtures are read from disk (they intentionally violate the rules, so
//! the walker skips `fixtures` directories, and they are never compiled).
//! Token-rule fixtures are checked under a *virtual* workspace path chosen
//! to put them in the rule's scope; flow-rule fixtures are materialized
//! into a throwaway workspace so the call-graph analyzer runs for real.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};

use detlint::lock::{parse_lock, ratchet};
use detlint::{analyze_workspace, check_file, check_workspace, parse_config, Config, Finding};

fn fixture(rule: &str, kind: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule)
        .join(format!("{kind}.rs"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()))
}

/// A virtual path that puts the fixture inside the rule's scope.
fn scoped_path(rule: &str) -> &'static str {
    match rule {
        // Any deterministic-crate src file is in scope for these.
        "wall_clock" | "ambient_rng" | "hash_collections" | "thread_spawn"
        | "unsafe_safety" => "crates/storage/src/fixture_under_test.rs",
        // Hot-path rule only fires on the configured files.
        "hot_path_unwrap" => "crates/storage/src/journal.rs",
        other => panic!("unknown rule {other}"),
    }
}

const ALL_RULES: [&str; 6] = [
    "wall_clock",
    "ambient_rng",
    "hash_collections",
    "thread_spawn",
    "unsafe_safety",
    "hot_path_unwrap",
];

/// The flow rules need the full analyzer, not `check_file`: the fixture is
/// placed into a throwaway workspace at a path that puts it in scope.
const FLOW_RULES: [(&str, &str); 3] = [
    // `engine.rs` file-stem makes its free fns match `engine::persist`.
    ("panic_reachable", "crates/demo/src/engine.rs"),
    // Any src path works: entry points are `*::dispatch` patterns.
    ("sim_purity", "crates/demo/src/event.rs"),
    // Must live in a deterministic crate's src/.
    ("float_ordering", "crates/demo/src/state.rs"),
];

fn flow_analyze(rule: &str, kind: &str, rel: &str) -> Vec<Finding> {
    let root =
        PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("detlint_flow_{rule}_{kind}"));
    let dst = root.join(rel);
    std::fs::create_dir_all(dst.parent().expect("fixture path has a parent")).expect("mkdir");
    std::fs::write(&dst, fixture(rule, kind)).expect("write fixture");
    let mut cfg = Config::default_repo();
    cfg.deterministic_crates.push("demo".to_owned());
    analyze_workspace(&root, &cfg).expect("analyze").findings
}

#[test]
fn every_flow_rule_flags_its_flagged_fixture() {
    for (rule, rel) in FLOW_RULES {
        let findings = flow_analyze(rule, "flagged", rel);
        assert!(
            findings.iter().any(|f| f.rule == rule),
            "{rule}/flagged.rs produced no {rule} finding: {findings:?}"
        );
        // Flow findings carry the enclosing symbol (the lock fingerprint
        // needs it to be stable under line edits).
        assert!(
            findings
                .iter()
                .filter(|f| f.rule == rule)
                .all(|f| f.symbol.is_some()),
            "{rule} findings missing symbols: {findings:?}"
        );
    }
}

#[test]
fn every_flow_rule_accepts_its_waived_fixture() {
    for (rule, rel) in FLOW_RULES {
        let findings = flow_analyze(rule, "waived", rel);
        assert!(
            findings.is_empty(),
            "{rule}/waived.rs still has findings: {findings:?}"
        );
    }
}

#[test]
fn every_flow_rule_accepts_its_clean_fixture() {
    for (rule, rel) in FLOW_RULES {
        let findings = flow_analyze(rule, "clean", rel);
        assert!(
            findings.is_empty(),
            "{rule}/clean.rs has findings: {findings:?}"
        );
    }
}

#[test]
fn every_rule_flags_its_flagged_fixture() {
    let cfg = Config::default_repo();
    for rule in ALL_RULES {
        let findings = check_file(scoped_path(rule), &fixture(rule, "flagged"), &cfg);
        assert!(
            findings.iter().any(|f| f.rule == rule),
            "{rule}/flagged.rs produced no {rule} finding: {findings:?}"
        );
    }
}

#[test]
fn every_rule_accepts_its_waived_fixture() {
    let cfg = Config::default_repo();
    for rule in ALL_RULES {
        let findings = check_file(scoped_path(rule), &fixture(rule, "waived"), &cfg);
        assert!(
            findings.is_empty(),
            "{rule}/waived.rs still has findings: {findings:?}"
        );
    }
}

#[test]
fn every_rule_accepts_its_clean_fixture() {
    let cfg = Config::default_repo();
    for rule in ALL_RULES {
        let findings = check_file(scoped_path(rule), &fixture(rule, "clean"), &cfg);
        assert!(
            findings.is_empty(),
            "{rule}/clean.rs has findings: {findings:?}"
        );
    }
}

#[test]
fn diagnostics_carry_file_line_and_rule() {
    let cfg = Config::default_repo();
    let findings = check_file(scoped_path("wall_clock"), &fixture("wall_clock", "flagged"), &cfg);
    let f = findings.first().expect("flagged fixture has findings");
    assert_eq!(f.file, scoped_path("wall_clock"));
    assert!(f.line > 0);
    let rendered = f.to_string();
    assert!(
        rendered.starts_with(&format!("{}:{}: wall_clock — ", f.file, f.line)),
        "unexpected diagnostic format: {rendered}"
    );
}

/// Build a minimal fake workspace in the cargo tmpdir and confirm the walk
/// finds an injected violation, then goes green once it is fixed.
#[test]
fn workspace_walk_catches_injected_violation() {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("detlint_inject");
    let src_dir = root.join("crates/demo/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir fake workspace");
    let lib = src_dir.join("lib.rs");

    let cfg = {
        let mut c = Config::default_repo();
        c.deterministic_crates.push("demo".to_owned());
        c
    };

    // Injected violation: a hash map in a deterministic crate.
    std::fs::write(&lib, "use std::collections::HashMap;\npub type M = HashMap<u64, u64>;\n")
        .expect("write violation");
    let findings = check_workspace(&root, &cfg).expect("walk");
    assert!(
        findings.iter().any(|f| f.rule == "hash_collections"
            && f.file == "crates/demo/src/lib.rs"),
        "injected violation not caught: {findings:?}"
    );

    // Fixed: deterministic collection, no findings.
    std::fs::write(&lib, "use std::collections::BTreeMap;\npub type M = BTreeMap<u64, u64>;\n")
        .expect("write fix");
    let findings = check_workspace(&root, &cfg).expect("walk");
    assert!(findings.is_empty(), "fixed tree still flagged: {findings:?}");
}

#[test]
fn fixtures_directories_are_skipped_by_the_walk() {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("detlint_skip");
    let fix_dir = root.join("crates/demo/tests/fixtures");
    std::fs::create_dir_all(&fix_dir).expect("mkdir");
    std::fs::write(
        fix_dir.join("bad.rs"),
        "pub fn f() { let _ = std::time::Instant::now(); }\n",
    )
    .expect("write");
    let findings = check_workspace(&root, &Config::default_repo()).expect("walk");
    assert!(findings.is_empty(), "fixtures dir was not skipped: {findings:?}");
}

/// The repo's own acceptance gate: the tree this test ships in must
/// analyze ratchet-clean under the shipped `detlint.toml` +
/// `detlint.lock` — no new flow findings, no stale lock entries, and the
/// token rules spotless. This is what `cargo run -p detlint` asserts in
/// CI, pinned here so `cargo test` alone catches a regression.
#[test]
fn repo_analyzes_clean_under_shipped_config_and_lock() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let toml_path = root.join("detlint.toml");
    let cfg = match std::fs::read_to_string(&toml_path) {
        Ok(text) => parse_config(&text).expect("detlint.toml parses"),
        // Source not laid out as the full repo (e.g. crate published alone):
        // nothing to assert.
        Err(_) => return,
    };
    let lock_text =
        std::fs::read_to_string(root.join("detlint.lock")).unwrap_or_default();
    let lock = parse_lock(&lock_text).expect("detlint.lock parses");
    let analysis = analyze_workspace(&root, &cfg).expect("analyze repo");
    let report = ratchet(&analysis.findings, &lock);
    assert!(
        report.is_clean(),
        "repo is not ratchet-clean.\nnew findings:\n{}\nstale lock entries:\n{}",
        report
            .new
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n"),
        report.stale.join("\n")
    );
}
