//! Fixture: panic sources reachable from a replication entry point
//! (`engine::persist` — this file plays the role of `engine.rs`).
//! Intentionally violates `panic_reachable`; never compiled.

pub fn persist(batch: &[u64]) -> u64 {
    step(batch)
}

fn step(batch: &[u64]) -> u64 {
    deep(batch)
}

fn deep(batch: &[u64]) -> u64 {
    // Two edges from the entry point: a bare unwrap, a non-invariant
    // expect, and a slice index — all three are findings.
    let first = batch.first().copied().unwrap();
    let second = lookup(first).expect("lookup failed");
    first + second + batch[1]
}

fn lookup(k: u64) -> Option<u64> {
    if k > 0 { Some(k) } else { None }
}
