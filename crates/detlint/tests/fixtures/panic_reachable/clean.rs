//! Fixture: the hot path is panic-free — typed errors and sanctioned
//! invariant-message expects only. A panic in a function *not* reachable
//! from an entry point is fine. Never compiled.

pub struct HotError;

pub fn persist(batch: &[u64]) -> Result<u64, HotError> {
    step(batch)
}

fn step(batch: &[u64]) -> Result<u64, HotError> {
    // Typed error instead of a panic.
    let first = batch.first().copied().ok_or(HotError)?;
    // `.expect("invariant: …")` is the sanctioned assertion form.
    let second = lookup(first).expect("invariant: lookup is total for admitted keys");
    Ok(first + second)
}

fn lookup(k: u64) -> Option<u64> {
    Some(k)
}

// Not reachable from any entry point — a bare unwrap here is cold-path
// code and out of scope for the rule.
fn report_tool(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap()
}
