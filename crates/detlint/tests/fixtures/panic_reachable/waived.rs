//! Fixture: the same reachable panic sources, each waived with a reason.
//! Never compiled.

pub fn persist(batch: &[u64]) -> u64 {
    step(batch)
}

fn step(batch: &[u64]) -> u64 {
    // detlint: allow(panic_reachable) — fixture: batch validated by the caller
    let first = batch.first().copied().unwrap();
    // detlint: allow(panic_reachable) — fixture: index bounded by the check above
    first + batch[1]
}
