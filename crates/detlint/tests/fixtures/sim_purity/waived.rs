//! Fixture: the ambient touch is waived with a reason. Never compiled.

pub struct StorageOp;

impl StorageOp {
    pub fn dispatch(self) {
        helper();
    }
}

fn helper() {
    // detlint: allow(sim_purity) — fixture: one-shot config load, happens before the event loop starts
    let _ = std::fs::read_to_string("state.txt");
}
