//! Fixture: a kernel event handler (`*::dispatch`) reaching ambient
//! state. Intentionally violates `sim_purity`; never compiled.

pub struct StorageOp;

impl StorageOp {
    pub fn dispatch(self) {
        helper();
    }
}

fn helper() {
    // One edge from dispatch: reads the real filesystem — the sim world
    // is no longer hermetic.
    let _ = std::fs::read_to_string("state.txt");
}
