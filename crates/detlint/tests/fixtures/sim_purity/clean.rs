//! Fixture: the handler stays hermetic — every effect flows through the
//! world state it was handed. Never compiled.

pub struct StorageOp;

pub struct World {
    pub blocks: Vec<u64>,
}

impl StorageOp {
    pub fn dispatch(self, w: &mut World) {
        apply(w);
    }
}

fn apply(w: &mut World) {
    w.blocks.push(1);
}

// Ambient state in a function no handler reaches is out of scope.
fn offline_export() {
    let _ = std::fs::read_to_string("report.txt");
}
