//! Fixture: a spawn with a reasoned waiver.
pub fn watchdog() {
    // detlint: allow(thread_spawn) — watchdog thread, never touches trial state
    std::thread::spawn(|| loop {
        std::thread::sleep(std::time::Duration::from_secs(60));
    });
}
