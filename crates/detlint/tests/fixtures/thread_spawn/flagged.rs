//! Fixture: raw thread spawn outside the harness.
pub fn fire_and_forget() {
    std::thread::spawn(|| {
        let _ = 1 + 1;
    });
}
