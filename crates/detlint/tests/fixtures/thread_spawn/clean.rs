//! Fixture: parallelism goes through the trial harness; the string
//! below naming thread::spawn must not be flagged.
pub fn policy() -> &'static str {
    "use TrialHarness, not thread::spawn"
}
