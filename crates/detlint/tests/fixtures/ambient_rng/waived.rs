//! Fixture: ambient randomness behind a reasoned waiver.
pub fn roll() -> u64 {
    // detlint: allow(ambient_rng) — interactive demo path, never inside a trial
    let mut rng = rand::thread_rng();
    rand::Rng::gen(&mut rng)
}
