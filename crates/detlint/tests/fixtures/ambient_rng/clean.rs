//! Fixture: randomness flows from a seeded DetRng.
pub fn roll(seed: u64) -> u64 {
    // thread_rng is banned; this comment saying so is not a finding
    let mut rng = tsuru_sim::DetRng::new(seed);
    rng.next()
}
