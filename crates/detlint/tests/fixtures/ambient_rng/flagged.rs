//! Fixture: ambient randomness.
pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rand::Rng::gen(&mut rng)
}

pub fn seeded_from_os() -> u64 {
    use rand::SeedableRng;
    let mut r = rand::rngs::StdRng::from_entropy();
    rand::Rng::gen(&mut r)
}
