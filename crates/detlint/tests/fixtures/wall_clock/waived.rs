//! Fixture: wall-clock reads, each with a reasoned waiver.
use std::time::Instant; // detlint: allow(wall_clock) — import only feeds the waived metric below

pub fn metric() -> u128 {
    // detlint: allow(wall_clock) — reporting-only latency metric
    let t0 = Instant::now();
    t0.elapsed().as_millis()
}
