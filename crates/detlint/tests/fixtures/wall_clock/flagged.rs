//! Fixture: reads the wall clock from simulated code.
use std::time::Instant;

pub fn elapsed_ms() -> u128 {
    let t0 = Instant::now();
    t0.elapsed().as_millis()
}

pub fn epoch() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
