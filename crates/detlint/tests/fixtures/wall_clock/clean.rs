//! Fixture: time handled through the sim clock; the only mentions of
//! real clocks are in strings and comments, which must not be flagged.

/// Instant::now is banned here — this doc comment is not a finding.
pub fn describe() -> &'static str {
    "call Instant::now via SystemTime? never: use tsuru_sim::SimTime"
}

pub fn sim_now(clock_ns: u64) -> u64 {
    clock_ns
}
