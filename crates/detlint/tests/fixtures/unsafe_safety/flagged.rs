//! Fixture: unsafe without a SAFETY comment.
pub fn transmute_free(x: u32) -> u32 {
    let y = unsafe { std::mem::transmute::<u32, u32>(x) };
    y
}
