//! Fixture: no unsafe at all; the word inside this string and the
//! `unsafe_code` identifier must not be flagged.
#![forbid(unsafe_code)]

pub fn note() -> &'static str {
    "unsafe is forbidden crate-wide"
}
