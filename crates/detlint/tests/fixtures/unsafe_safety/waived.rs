//! Fixture: unsafe justified by a SAFETY comment (same line and above).
pub fn justified(x: u32) -> u32 {
    // SAFETY: u32 -> u32 transmute is trivially sound.
    let y = unsafe { std::mem::transmute::<u32, u32>(x) };
    let z = unsafe { std::mem::transmute::<u32, u32>(y) }; // SAFETY: as above
    z
}
