//! Fixture: a hash map that never reaches output, waived with a reason.
// detlint: allow(hash_collections) — membership cache, iteration order never observed
use std::collections::HashSet;

pub fn dedup_count(xs: &[u64]) -> usize {
    // detlint: allow(hash_collections) — same cache as above
    let seen: HashSet<u64> = xs.iter().copied().collect();
    seen.len()
}
