//! Fixture: hash collections in a deterministic crate.
use std::collections::{HashMap, HashSet};

pub fn tally(xs: &[u64]) -> HashMap<u64, u64> {
    let mut seen: HashSet<u64> = HashSet::new();
    let mut out = HashMap::new();
    for &x in xs {
        seen.insert(x);
        *out.entry(x).or_insert(0) += 1;
    }
    out
}
