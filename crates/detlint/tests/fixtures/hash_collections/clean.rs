//! Fixture: deterministic collections only. Mentions of HashMap in
//! comments and strings must not be flagged.
use std::collections::BTreeMap;

pub fn tally(xs: &[u64]) -> BTreeMap<u64, u64> {
    let mut out = BTreeMap::new(); // was a HashMap once
    for &x in xs {
        *out.entry(x).or_insert(0) += 1;
    }
    out
}
