//! Fixture: each float-ordering site waived with a reason. Never compiled.

use std::collections::BTreeMap;

#[derive(PartialEq, PartialOrd)] // detlint: allow(float_ordering) — fixture: display-only ordering, never digested
pub struct Lag {
    pub secs: f64,
}

pub type ByLag = BTreeMap<u64, f64>; // integer-keyed: nothing to waive

pub fn rank(xs: &mut [f64]) {
    // detlint: allow(float_ordering) — fixture: inputs are pre-filtered finite
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
