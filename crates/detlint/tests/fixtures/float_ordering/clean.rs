//! Fixture: deterministic ordering — integer keys, `total_cmp`, and float
//! state kept out of `Ord` positions. Never compiled.

use std::collections::BTreeMap;

// Fixed-point key: ordering is total and bit-stable.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
pub struct LagNanos {
    pub nanos: u64,
}

// Floats are fine as *values*; only key/ordering positions are policed.
pub type ByLag = BTreeMap<u64, f64>;

pub fn rank(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}
