//! Fixture: floats in ordering positions inside a deterministic crate.
//! Intentionally violates `float_ordering`; never compiled.

use std::collections::BTreeMap;

// Float fields + a derived ordering: NaN makes the order partial and the
// bits are target-dependent.
#[derive(PartialEq, PartialOrd)]
pub struct Lag {
    pub secs: f64,
}

// A float-keyed ordered collection.
pub type ByLag = BTreeMap<f64, u64>;

pub fn rank(xs: &mut [f64]) {
    // Panics on NaN and encodes a partial order.
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
