//! Fixture: a hot-path unwrap with a reasoned waiver.
pub fn apply(entry: Option<u64>) -> u64 {
    // detlint: allow(hot_path_unwrap) — entry presence checked by caller this tick
    entry.unwrap()
}
