//! Fixture: hot-path errors carry invariant messages or propagate.
//! The ".unwrap()" in this string must not be flagged.
pub fn apply(entry: Option<u64>) -> u64 {
    let _doc = "never call .unwrap() here";
    entry.expect("invariant: journal entries arrive in order")
}
