//! Fixture: bare unwraps on a hot path.
pub fn apply(entry: Option<u64>, prev: Option<u64>) -> u64 {
    let e = entry.unwrap();
    e + prev.unwrap()
}
