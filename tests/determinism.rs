//! Workspace-wide determinism: identical seeds produce bit-identical runs
//! across every layer, and different seeds genuinely differ.

use tsuru_core::experiments::{
    e1_slowdown, e2_collapse_with, e3_rpo_with, e5_operator, e6_demo,
};
use tsuru_core::{BackupMode, RigConfig, TrialHarness, TwoSiteRig};
use tsuru_sim::{SimDuration, SimTime};

fn fingerprint(seed: u64, mode: BackupMode) -> (u64, u64, Vec<(u64, SimTime)>) {
    let mut cfg = RigConfig {
        seed,
        mode,
        ..Default::default()
    };
    cfg.engine.pump_jitter = SimDuration::from_millis(1);
    let mut rig = TwoSiteRig::new(cfg);
    let fail_at = SimTime::from_millis(90);
    rig.schedule_main_failure(fail_at);
    tsuru_ecom::driver::start_clients(&mut rig.world, &mut rig.sim);
    rig.sim
        .run_until(&mut rig.world, fail_at + SimDuration::from_millis(120));
    let (_, rpo) = rig.failover(fail_at);
    (
        rig.world.st.ack_log.len() as u64,
        rpo.lost_writes,
        rig.world.app().metrics.committed_log.clone(),
    )
}

#[test]
fn same_seed_bit_identical_across_modes() {
    for mode in [
        BackupMode::AdcConsistencyGroup,
        BackupMode::AdcPerVolume,
        BackupMode::Sdc,
    ] {
        let a = fingerprint(1234, mode);
        let b = fingerprint(1234, mode);
        assert_eq!(a, b, "mode {} not deterministic", mode.label());
    }
}

#[test]
fn different_seeds_differ() {
    let a = fingerprint(1, BackupMode::AdcConsistencyGroup);
    let b = fingerprint(2, BackupMode::AdcConsistencyGroup);
    assert_ne!(a.2, b.2, "different seeds should produce different runs");
}

#[test]
fn experiment_tables_are_reproducible() {
    let a = e1_slowdown(5, &[2, 10], SimDuration::from_millis(100));
    let b = e1_slowdown(5, &[2, 10], SimDuration::from_millis(100));
    let key = |rows: &[tsuru_core::experiments::E1Row]| -> Vec<(String, u64, u64)> {
        rows.iter()
            .map(|r| (r.mode.clone(), r.tps as u64, (r.p50_ms * 1e6) as u64))
            .collect()
    };
    assert_eq!(key(&a), key(&b));

    let ea = e5_operator(&[10]);
    let eb = e5_operator(&[10]);
    assert_eq!(ea[0].api_mutations, eb[0].api_mutations);
    assert_eq!(ea[0].rounds, eb[0].rounds);
}

/// The tentpole guarantee: the E2 table out of the trial harness is
/// **byte-identical** at every thread count. Debug-formatting the rows
/// compares every field bit-for-bit (floats included, since identical
/// bits render identically).
#[test]
fn e2_rows_byte_identical_across_thread_counts() {
    let jitter = SimDuration::from_millis(2);
    let serial = e2_collapse_with(&TrialHarness::new(1), 1000, 6, jitter);
    let reference = format!("{:?}", serial.rows);
    for threads in [2usize, 8] {
        let par = e2_collapse_with(&TrialHarness::new(threads), 1000, 6, jitter);
        assert_eq!(par.stats.threads, threads);
        assert_eq!(
            format!("{:?}", par.rows),
            reference,
            "E2 rows diverged at {threads} threads"
        );
    }
}

/// Same guarantee for a grid-shaped experiment (cells, not drills).
#[test]
fn e3_rows_byte_identical_across_thread_counts() {
    let serial = e3_rpo_with(&TrialHarness::new(1), 7, &[100, 500], &[1, 64]);
    let par = e3_rpo_with(&TrialHarness::new(8), 7, &[100, 500], &[1, 64]);
    assert_eq!(format!("{:?}", serial.rows), format!("{:?}", par.rows));
}

#[test]
fn demo_transcript_is_reproducible() {
    let a = e6_demo(77);
    let b = e6_demo(77);
    assert_eq!(a.transcript, b.transcript);
    assert_eq!(a.committed_orders, b.committed_orders);
    assert_eq!(a.lost_orders, b.lost_orders);
}
