//! Cross-crate integration: the full stack from container-platform tag to
//! recovered business process, exercising every crate in one flow.

use tsuru_container::{ClaimPhase, ReplicationState, BACKUP_TAG_KEY};
use tsuru_core::experiments::{e3_rpo, e4_snapshot};
use tsuru_core::{BackupMode, DemoConfig, DemoSystem, RigConfig, TwoSiteRig};
use tsuru_history::Recorder;
use tsuru_nso::NsoConfig;
use tsuru_sim::{SimDuration, SimTime};

#[test]
fn tag_to_recovery_full_journey() {
    let mut demo = DemoSystem::new(DemoConfig {
        seed: 99,
        ..Default::default()
    });
    // Record every client-visible op (orders, image observations) so
    // the history checker can judge the whole journey at the end.
    demo.world.st.set_history(Recorder::enabled());

    // Claims were dynamically provisioned through the CSI driver.
    for name in tsuru_core::VOLUME_NAMES {
        let pvc = demo
            .main_api
            .pvcs
            .get(&format!("shop/{name}"))
            .expect("claim exists");
        assert_eq!(pvc.phase, ClaimPhase::Bound, "{name} bound");
    }

    // Tag → operator → plugin → array pairs → backup-site claims.
    demo.step1_configure_backup();
    assert_eq!(demo.groups().len(), 1);
    for vr in demo.main_api.replications.list() {
        assert_eq!(vr.state, ReplicationState::Replicating);
        assert!(vr.pair_handle.is_some());
    }

    // Business runs; snapshots; analytics; disaster; recovery.
    demo.run_workload_for(SimDuration::from_millis(150));
    let handles = demo.step2_develop_snapshot("pit");
    assert_eq!(handles.len(), 4);
    let analytics = demo.step3_analytics(&handles, 3).expect("consistent image");
    assert!(analytics.order_count > 0);

    let fail_at = demo.sim.now();
    demo.fail_main_site();
    demo.sim
        .run_until(&mut demo.world, fail_at + SimDuration::from_millis(80));
    let failover = demo.failover(fail_at);
    assert!(failover.consistency.is_consistent());
    let business = demo.recover_business();
    assert!(business.fully_consistent());
    let orders = business.orders.expect("orders counted");
    assert!(orders.recovered > 0);
    assert!(orders.recovered + orders.lost == orders.committed);

    // The engine counters say the recovery worked; the client-visible
    // oracle must agree. The history holds every placed order plus two
    // image observations (the analytics scan and the DR recovery), and
    // no checker may find an anomaly in a consistency-group journey.
    let verdict = demo.history_verdict();
    assert!(verdict.records > 0, "history must have been recorded");
    assert!(verdict.ops_checked() > 0, "checkers must have had work");
    assert!(verdict.is_clean(), "{}", verdict.render());
}

#[test]
fn untagging_tears_everything_down() {
    let mut demo = DemoSystem::new(DemoConfig::default());
    demo.step1_configure_backup();
    assert_eq!(demo.backup_api.pvcs.len(), 4);
    let pairs_before: usize = demo
        .groups()
        .iter()
        .map(|&g| demo.world.st.fabric.group(g).pairs.len())
        .sum();
    assert_eq!(pairs_before, 4);

    // Untag: the operator deletes the CRs; the plugin detaches the pairs;
    // the importer withdraws the backup-site claims.
    demo.main_api.namespaces.update("shop", |ns| {
        ns.meta.labels.remove(BACKUP_TAG_KEY);
        true
    });
    demo.reconcile_main();
    demo.reconcile_backup();

    assert_eq!(demo.main_api.replication_groups.len(), 0);
    assert_eq!(demo.main_api.replications.len(), 0);
    let pairs_after: usize = demo
        .groups()
        .iter()
        .map(|&g| demo.world.st.fabric.group(g).pairs.len())
        .sum();
    assert_eq!(pairs_after, 0, "pairs detached on the array");
    assert_eq!(demo.backup_api.pvcs.len(), 0, "backup claims withdrawn");
}

#[test]
fn retagging_reconfigures_cleanly() {
    let mut demo = DemoSystem::new(DemoConfig::default());
    demo.step1_configure_backup();
    demo.main_api.namespaces.update("shop", |ns| {
        ns.meta.labels.remove(BACKUP_TAG_KEY);
        true
    });
    demo.reconcile_main();
    demo.reconcile_backup();
    // Tag again: a fresh configuration must converge.
    let (main, backup) = demo.step1_configure_backup();
    assert!(main.converged && backup.converged);
    assert_eq!(demo.backup_api.pvcs.len(), 4);
    // Workload still runs and replicates.
    demo.run_workload_for(SimDuration::from_millis(80));
    assert!(demo.world.app().metrics.committed_orders > 0);
}

#[test]
fn naive_demo_system_collapses_under_the_right_conditions() {
    // The same DemoSystem but with the operator in naive (per-volume) mode
    // and skewed replication sessions: across a handful of seeds, at least
    // one drill must show write-order infidelity — and the CG mode none.
    // The history checker must reach the same verdict as the engine-level
    // invariant on every drill: a collapse is real when a *client* of the
    // recovered replica can observe it, not just when internal counters say
    // so.
    let mut naive_bad = 0;
    let mut client_visible = 0;
    for seed in [31u64, 32, 33, 34] {
        let mut cfg = DemoConfig {
            seed,
            nso: NsoConfig {
                consistency_group: false,
                ..Default::default()
            },
            ..Default::default()
        };
        cfg.engine.pump_jitter = SimDuration::from_millis(2);
        // Dense writes make the skew windows observable.
        cfg.workload.think_time_mean = SimDuration::from_millis(1);
        let mut demo = DemoSystem::new(cfg);
        demo.world.st.set_history(Recorder::enabled());
        demo.step1_configure_backup();
        demo.run_workload_for(SimDuration::from_millis(120));
        let fail_at = demo.sim.now();
        demo.fail_main_site();
        demo.sim
            .run_until(&mut demo.world, fail_at + SimDuration::from_millis(100));
        let failover = demo.failover(fail_at);
        if !failover.consistency.prefix.consistent {
            naive_bad += 1;
        }
        let business = demo.recover_business();
        let verdict = demo.history_verdict();
        assert_eq!(
            verdict.is_clean(),
            business.fully_consistent(),
            "seed {seed}: history checker and cross-db invariant disagree:\n{}",
            verdict.render()
        );
        if !verdict.is_clean() {
            client_visible += 1;
        }
    }
    assert!(naive_bad >= 2, "naive mode should usually collapse: {naive_bad}/4");
    assert!(
        client_visible >= 1,
        "at least one drill must collapse in a way a client can see: \
         {client_visible}/4 (byte-level: {naive_bad}/4)"
    );
}

#[test]
fn e3_rpo_shrinks_with_bandwidth() {
    let rows = e3_rpo(5, &[50, 1000], &[64]);
    let slow = rows
        .iter()
        .find(|r| r.mode == "adc-cg" && r.bandwidth_mbps == 50)
        .unwrap();
    let fast = rows
        .iter()
        .find(|r| r.mode == "adc-cg" && r.bandwidth_mbps == 1000)
        .unwrap();
    assert!(
        slow.lost_orders > fast.lost_orders,
        "slow {slow:?} vs fast {fast:?}"
    );
    let sdc = rows.iter().find(|r| r.mode == "sdc").unwrap();
    assert_eq!(sdc.lost_orders, 0, "SDC is the zero-loss reference");
}

#[test]
fn e4_atomicity_matters() {
    let rows = e4_snapshot(17);
    let atomic = rows.iter().find(|r| r.scenario == "group-atomic").unwrap();
    assert!(atomic.image_consistent, "{atomic:?}");
    assert!(atomic.analytics_orders > 0);
    assert!(atomic.analytics_orders < atomic.committed_at_end);
    // The non-atomic scenario is allowed to be consistent by luck on some
    // seeds, but the atomic one must always be consistent.
}

#[test]
fn sdc_mode_through_the_demo_system() {
    let mut cfg = DemoConfig::default();
    cfg.nso.mode = tsuru_container::ReplicationMode::Sync;
    let mut demo = DemoSystem::new(cfg);
    demo.step1_configure_backup();
    demo.run_workload_for(SimDuration::from_millis(100));
    let committed = demo.world.app().metrics.committed_orders;
    assert!(committed > 0);
    // SDC latency is visibly higher than the ADC default (metro 2 ms one
    // way → ≥ 4 ms per database commit).
    let p50 = demo.world.app().metrics.txn_latency.summary().p50;
    assert!(
        p50 > 8_000_000,
        "two SDC commits per order must cost ≥ 2 RTTs, got {p50}ns"
    );
    // And nothing is lost at failover.
    let fail_at = demo.sim.now();
    demo.fail_main_site();
    demo.sim
        .run_until(&mut demo.world, fail_at + SimDuration::from_millis(50));
    demo.failover(fail_at);
    let business = demo.recover_business();
    assert!(business.fully_consistent());
    assert_eq!(business.orders.unwrap().lost, 0);
}

#[test]
fn rig_modes_have_distinct_latency_signatures() {
    let mut results = Vec::new();
    for mode in [
        BackupMode::None,
        BackupMode::AdcConsistencyGroup,
        BackupMode::AdcPerVolume,
        BackupMode::Sdc,
    ] {
        let mut rig = TwoSiteRig::new(RigConfig {
            seed: 8,
            mode,
            ..Default::default()
        });
        rig.world.app_mut().stop_after_orders = Some(200);
        tsuru_ecom::driver::start_clients(&mut rig.world, &mut rig.sim);
        rig.sim.run_until(&mut rig.world, SimTime::from_secs(30));
        results.push((mode.label(), rig.latency_summary().p50));
    }
    let p50 = |label: &str| results.iter().find(|(l, _)| *l == label).unwrap().1;
    // Both ADC flavours match the unprotected baseline; SDC does not.
    assert_eq!(p50("none"), p50("adc-cg"));
    assert_eq!(p50("none"), p50("adc-naive"));
    assert!(p50("sdc") > p50("none") * 10);
}

#[test]
fn operator_handles_many_namespaces_independently() {
    // The paper's motivation: "hundreds of volumes ... used in hundreds of
    // applications". Several namespaces share the platform; only tagged
    // ones are protected, each in its own consistency group.
    use tsuru_container::{Namespace, ObjectMeta, PersistentVolumeClaim};
    let mut demo = DemoSystem::new(DemoConfig::default());
    for i in 0..6 {
        let ns = format!("tenant-{i}");
        demo.main_api.namespaces.create(Namespace {
            meta: ObjectMeta::cluster(&ns),
        });
        for v in 0..3 {
            demo.main_api.pvcs.create(PersistentVolumeClaim {
                meta: ObjectMeta::namespaced(&ns, format!("vol-{v}")),
                storage_class: "tsuru-block".into(),
                size_blocks: 32,
                phase: ClaimPhase::Pending,
                volume_name: None,
            });
        }
        // Tag the even tenants only.
        if i % 2 == 0 {
            demo.main_api.namespaces.update(&ns, |n| {
                n.meta
                    .labels
                    .insert(BACKUP_TAG_KEY.into(), tsuru_container::BACKUP_TAG_VALUE.into());
                true
            });
        }
    }
    let report = demo.reconcile_main();
    assert!(report.converged);
    demo.reconcile_backup();

    // Three tagged tenants → three ReplicationGroups → three array CGs
    // (the 'shop' namespace itself is still untagged here).
    assert_eq!(demo.main_api.replication_groups.len(), 3);
    assert_eq!(demo.groups().len(), 3);
    for i in [0, 2, 4] {
        let rg = demo
            .main_api
            .replication_groups
            .get(&format!("tenant-{i}/tenant-{i}-backup"))
            .expect("tagged tenant configured");
        assert_eq!(rg.member_pvcs.len(), 3);
    }
    assert!(!demo
        .main_api
        .replication_groups
        .contains("tenant-1/tenant-1-backup"));
    // Backup site shows exactly the tagged tenants' claims.
    assert_eq!(demo.backup_api.pvcs.len(), 9);
    // Each CG is independent on the array.
    for &g in &demo.groups() {
        assert_eq!(demo.world.st.fabric.group(g).pairs.len(), 3);
    }
}
