//! Minimal vendored benchmark harness, source-compatible with the subset
//! of `criterion` the workspace's benches use.
//!
//! The registry is unreachable in the build environment, so this crate
//! provides [`Criterion`], benchmark groups, [`black_box`] and the
//! `criterion_group!`/`criterion_main!` macros. Each sample times one
//! invocation of the `b.iter` closure; min/mean/max wall-clock per sample
//! are printed. No statistical analysis, plots or baselines — enough to
//! measure and compare the serial and parallel experiment paths.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to benchmark closures; times the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time one invocation of `routine` and record it as a sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_samples(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
    };
    // One warm-up invocation, not recorded.
    f(&mut b);
    b.samples.clear();
    for _ in 0..sample_size {
        f(&mut b);
    }
    let n = b.samples.len().max(1);
    let total: Duration = b.samples.iter().sum();
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let max = b.samples.iter().max().copied().unwrap_or_default();
    println!(
        "{label:<48} time: [min {} / mean {} / max {}]  ({n} samples)",
        fmt_dur(min),
        fmt_dur(total / n as u32),
        fmt_dur(max),
    );
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of recorded samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmark a routine under `id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_samples(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            f,
        );
        self
    }

    /// Benchmark a routine parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_samples(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// End the group (printing already happened per benchmark).
    pub fn finish(self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Fresh harness.
    pub fn new() -> Self {
        Criterion {}
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Benchmark a standalone routine.
    pub fn bench_function(
        &mut self,
        name: &str,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_samples(name, 20, f);
        self
    }
}

/// Declare a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags (e.g. --bench); ignore them.
            $($group();)+
        }
    };
}
