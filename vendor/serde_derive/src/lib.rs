//! No-op `Serialize`/`Deserialize` derives for the vendored serde stand-in.
//!
//! The companion `serde` crate blanket-implements both traits for every
//! type, so the derives have nothing to emit — they exist only so that
//! `#[derive(Serialize, Deserialize)]` attributes parse.

use proc_macro::TokenStream;

/// No-op: `serde::Serialize` is blanket-implemented for all types.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op: `serde::Deserialize` is blanket-implemented for all types.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
