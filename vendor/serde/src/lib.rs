//! Minimal vendored stand-in for `serde`.
//!
//! Nothing in the workspace actually serializes (there is no serde_json or
//! bincode); the derives on experiment-row and config types only declare
//! intent. The registry is unreachable in the build environment, so this
//! crate supplies marker traits satisfied by every type (blanket impls) and
//! no-op derive macros, keeping `#[derive(Serialize, Deserialize)]` and
//! `T: Serialize` bounds source-compatible.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`. Blanket-implemented for all
/// types so derives and bounds cost nothing.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize<'de>`. Blanket-implemented
/// for all sized types.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Namespace mirror of `serde::de`.
pub mod de {
    pub use super::DeserializeOwned;
}
