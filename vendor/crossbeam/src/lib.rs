//! Minimal vendored stand-in for `crossbeam`.
//!
//! Supplies the scoped-thread API the workspace uses (DESIGN.md §6: fanning
//! independent deterministic trials over a thread pool), implemented on top
//! of `std::thread::scope` (stable since Rust 1.63). The registry is
//! unreachable in the build environment; the API shape matches
//! `crossbeam::thread::scope` so call sites stay source-compatible with the
//! real crate.

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// A scope handle passed to [`scope`]'s closure; spawns threads that
    /// must join before the scope ends.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be spawned;
    /// all of them are joined before `scope` returns. Matching crossbeam's
    /// signature, the result is `Err` if any *unjoined* thread panicked
    /// (std's scope propagates those panics, so in practice `Ok`).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = vec![1u64, 2, 3, 4];
        let sum = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(sum, 10);
    }
}
