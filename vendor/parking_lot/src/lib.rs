//! Minimal vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's poison-free API
//! (`lock()` returns the guard directly). The registry is unreachable in
//! the build environment; this keeps declared dependencies resolvable and
//! the API source-compatible for the call sites the workspace grows.

use std::sync;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(t: T) -> Self {
        Mutex(sync::Mutex::new(t))
    }

    /// Acquire the lock (panics of other holders are ignored, as in
    /// parking_lot, by unwrapping the poison).
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's poison-free API.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(t: T) -> Self {
        RwLock(sync::RwLock::new(t))
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
    }
}
