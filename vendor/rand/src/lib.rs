//! Minimal vendored stand-in for the `rand` crate.
//!
//! The workspace only uses the [`RngCore`] trait (implemented by
//! `tsuru_sim::DetRng` so external generator adapters can plug in); the
//! registry is unreachable in the build environment, so this local crate
//! provides that trait with the real signatures.

use std::fmt;

/// Error type returned by [`RngCore::try_fill_bytes`].
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator, per rand 0.8's `RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fill `dest` with random bytes, fallibly.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}
