//! Minimal vendored property-testing library, source-compatible with the
//! subset of `proptest` the workspace uses.
//!
//! The registry is unreachable in the build environment, so this crate
//! reimplements the pieces the test suites rely on: the [`Strategy`] trait
//! with `prop_map`/`prop_flat_map`, range/tuple/`Just` strategies,
//! collection and option combinators, `sample::Index`, weighted
//! `prop_oneof!`, and the `proptest!` / `prop_assert*` macros. Generation
//! is seeded and fully deterministic (no shrinking — failing inputs are
//! printed in full instead).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------
// Deterministic generator RNG (splitmix64)
// ---------------------------------------------------------------------

/// The RNG driving value generation. Deterministic per (test, case).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        // Multiply-shift; bias is irrelevant for test-case generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------
// Strategy trait and core combinators
// ---------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` returns.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

trait DynStrategy {
    type Value;
    fn dyn_new_value(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V> {
    inner: Box<dyn DynStrategy<Value = V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        self.inner.dyn_new_value(rng)
    }
}

/// Weighted union of strategies; built by [`prop_oneof!`].
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Build from weighted boxed arms (weights must sum > 0).
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs positive total weight");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.new_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight bookkeeping")
    }
}

// ---------------------------------------------------------------------
// Range and primitive strategies
// ---------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
signed_range_strategy!(i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        // Include the endpoint occasionally (1/1024) so `..=1.0` can hit 1.0.
        if rng.below(1024) == 0 {
            *self.end()
        } else {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident $idx:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
}

// ---------------------------------------------------------------------
// Arbitrary / any
// ---------------------------------------------------------------------

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy for the whole domain of `T`.
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

// ---------------------------------------------------------------------
// prop:: namespace — collections, option, sample
// ---------------------------------------------------------------------

/// Mirror of the `proptest::prop` module namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::*;

        /// Size bounds accepted by collection strategies.
        pub trait SizeRange {
            /// (min, max) sizes, both inclusive.
            fn bounds(&self) -> (usize, usize);
        }
        impl SizeRange for Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                assert!(self.start < self.end, "empty size range");
                (self.start, self.end - 1)
            }
        }
        impl SizeRange for RangeInclusive<usize> {
            fn bounds(&self) -> (usize, usize) {
                (*self.start(), *self.end())
            }
        }
        impl SizeRange for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self)
            }
        }

        /// Strategy for `Vec<S::Value>` with length in `size`.
        pub struct VecStrategy<S> {
            elem: S,
            min: usize,
            max: usize,
        }

        /// `Vec` of values from `elem`, sized within `size`.
        pub fn vec<S: Strategy>(elem: S, size: impl SizeRange) -> VecStrategy<S> {
            let (min, max) = size.bounds();
            VecStrategy { elem, min, max }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
                (0..n).map(|_| self.elem.new_value(rng)).collect()
            }
        }

        /// Strategy for `BTreeMap` with size in bounds.
        pub struct BTreeMapStrategy<K, V> {
            key: K,
            value: V,
            min: usize,
            max: usize,
        }

        /// `BTreeMap` of generated keys/values, sized within `size`.
        pub fn btree_map<K: Strategy, V: Strategy>(
            key: K,
            value: V,
            size: impl SizeRange,
        ) -> BTreeMapStrategy<K, V>
        where
            K::Value: Ord,
        {
            let (min, max) = size.bounds();
            BTreeMapStrategy {
                key,
                value,
                min,
                max,
            }
        }

        impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
        where
            K::Value: Ord,
        {
            type Value = BTreeMap<K::Value, V::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let target = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
                let mut out = BTreeMap::new();
                // Duplicate keys shrink the map; retry a bounded number of
                // times to reach the target (collisions are vanishingly
                // rare for 64-bit key domains).
                let mut attempts = 0;
                while out.len() < target && attempts < target * 10 + 16 {
                    out.insert(self.key.new_value(rng), self.value.new_value(rng));
                    attempts += 1;
                }
                out
            }
        }

        /// Strategy for `BTreeSet` with size in bounds.
        pub struct BTreeSetStrategy<S> {
            elem: S,
            min: usize,
            max: usize,
        }

        /// `BTreeSet` of generated values, sized within `size`.
        pub fn btree_set<S: Strategy>(elem: S, size: impl SizeRange) -> BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            let (min, max) = size.bounds();
            BTreeSetStrategy { elem, min, max }
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let target = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
                let mut out = BTreeSet::new();
                let mut attempts = 0;
                while out.len() < target && attempts < target * 10 + 16 {
                    out.insert(self.elem.new_value(rng));
                    attempts += 1;
                }
                out
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::*;

        /// Strategy yielding `None` about a quarter of the time.
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `Option` of values from `inner`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.new_value(rng))
                }
            }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        use super::super::*;

        /// An index into a collection of as-yet-unknown size.
        #[derive(Clone, Copy)]
        pub struct Index(u64);

        impl Index {
            /// Resolve against a concrete length (> 0).
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl fmt::Debug for Index {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "Index({})", self.0)
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index(rng.next_u64())
            }
        }
    }
}

// ---------------------------------------------------------------------
// Config and runner plumbing used by the proptest! macro
// ---------------------------------------------------------------------

/// Per-block configuration (case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Outcome of one generated case: `Err` carries the assertion message,
/// `Ok(false)` means the case was rejected by `prop_assume!`.
pub type CaseResult = Result<(), String>;

#[doc(hidden)]
pub fn __run_cases(
    test_name: &str,
    cfg: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> CaseResult,
) {
    for i in 0..cfg.cases {
        // Deterministic per (test, case): derived from the test name so
        // sibling tests see different streams.
        let mut seed = 0x7C0_FFEE_u64;
        for b in test_name.bytes() {
            seed = seed.wrapping_mul(0x100000001b3).wrapping_add(b as u64);
        }
        let mut rng = TestRng::new(seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
        if let Err(msg) = case(&mut rng) {
            panic!("proptest '{test_name}' failed at case {i}/{}:\n{msg}", cfg.cases);
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Define property tests: each `fn name(arg in strategy, ...)` body runs
/// once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            $crate::__run_cases(stringify!($name), &cfg, |rng| {
                use $crate::Strategy as _;
                $(let $arg = ($strat).new_value(rng);)+
                let inputs = format!(
                    concat!($(concat!(stringify!($arg), " = {:?}\n")),+),
                    $(&$arg),+
                );
                let mut run = || -> $crate::CaseResult { $body Ok(()) };
                run().map_err(|msg| format!("{msg}\ninputs:\n{inputs}"))
            });
        }
    )*};
}

/// Assert inside a proptest body; on failure the case inputs are reported.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)*)
            ));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!(
                "assertion failed: {} == {}: {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                format!($($fmt)*),
                a,
                b
            ));
        }
    }};
}

/// Skip the case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Weighted (or unweighted) union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {{
        use $crate::Strategy as _;
        $crate::Union::new_weighted(vec![$(($weight, ($strat).boxed())),+])
    }};
    ($($strat:expr),+ $(,)?) => {{
        use $crate::Strategy as _;
        $crate::Union::new_weighted(vec![$((1u32, ($strat).boxed())),+])
    }};
}

/// Mirror of `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in 0.25f64..=0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..=0.75).contains(&f), "f={f}");
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((0usize..4, any::<u8>()).prop_map(|(a, b)| a + b as usize), 1..20),
            o in prop::option::of(Just(9u8)),
            pick in prop_oneof![3 => Just(1u8), 1 => Just(2u8)],
            idx in any::<prop::sample::Index>(),
            m in prop::collection::btree_map(any::<u64>(), any::<u8>(), 0..6),
            s in prop::collection::btree_set(any::<u64>(), 2..5),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(o.is_none() || o == Some(9));
            prop_assert!(pick == 1 || pick == 2);
            prop_assert!(idx.index(v.len()) < v.len());
            prop_assert!(m.len() < 6);
            prop_assert!((2..5).contains(&s.len()));
        }

        #[test]
        fn flat_map_sees_inner_value(pair in (1usize..8).prop_flat_map(|n| {
            prop::collection::vec(any::<u8>(), n..=n).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(pair.0, pair.1.len());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec(0u64..1000, 5..10);
        let a: Vec<Vec<u64>> = (0..10)
            .map(|i| strat.new_value(&mut crate::TestRng::new(i)))
            .collect();
        let b: Vec<Vec<u64>> = (0..10)
            .map(|i| strat.new_value(&mut crate::TestRng::new(i)))
            .collect();
        assert_eq!(a, b);
    }
}
