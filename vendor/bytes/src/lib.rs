//! Minimal vendored stand-in for the `bytes` crate.
//!
//! Provides the subset the workspace uses: [`Bytes`], a cheaply cloneable,
//! immutable, reference-counted byte buffer. The registry is not reachable
//! in the build environment, so this local implementation keeps the public
//! API surface (constructors, `Deref<Target = [u8]>`, cheap `Clone`)
//! source-compatible with the real crate.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. `Clone` is O(1).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Build a buffer from a static slice (copied; the real crate borrows,
    /// but no caller relies on zero-copy here).
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A sub-range copied into a new buffer.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::copy_from_slice(&self.data[range])
    }

    /// Copy out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data[..].hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_cheap_clone() {
        let b = Bytes::copy_from_slice(b"hello");
        let c = b.clone();
        assert_eq!(&b[..], b"hello");
        assert_eq!(b, c);
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        assert_eq!(Bytes::from(vec![1, 2, 3]).to_vec(), vec![1, 2, 3]);
        assert_eq!(Bytes::from_static(b"xy").slice(1..2), Bytes::from(&b"y"[..]));
    }
}
