//! Disaster-recovery drill: why consistency groups matter (§I).
//!
//! Runs the same surprise-failure drill twice — once with all four volumes
//! in one consistency group, once with the naive per-volume replication —
//! and shows what recovery finds at the backup site in each case.
//!
//! ```text
//! cargo run --example disaster_recovery
//! ```

use tsuru_core::{BackupMode, RigConfig, TwoSiteRig};
use tsuru_sim::{SimDuration, SimTime};

fn drill(mode: BackupMode, seed: u64) {
    println!("=== drill: mode = {} (seed {seed}) ===", mode.label());
    let mut cfg = RigConfig {
        seed,
        mode,
        ..Default::default()
    };
    // Independent replication sessions drift; 2 ms of skew is modest.
    cfg.engine.pump_jitter = SimDuration::from_millis(2);
    // A busy shop: dense commits make the skew windows visible.
    cfg.workload.think_time_mean = SimDuration::from_millis(1);
    let mut rig = TwoSiteRig::new(cfg);

    let fail_at = SimTime::from_millis(130);
    rig.schedule_main_failure(fail_at);
    tsuru_ecom::driver::start_clients(&mut rig.world, &mut rig.sim);
    rig.sim
        .run_until(&mut rig.world, fail_at + SimDuration::from_millis(200));
    println!("  committed orders at disaster: {}", rig.committed_orders());

    let (consistency, rpo) = rig.failover(fail_at);
    println!(
        "  storage verdict: prefix-consistent = {}, lost writes = {}, rpo = {}",
        consistency.prefix.consistent, rpo.lost_writes, rpo.rpo
    );
    for v in consistency.prefix.violations.iter().take(3) {
        println!("    violation: {v}");
    }

    let outcome = rig.recover_from_backup();
    match (&outcome.sales, &outcome.stock) {
        (Ok((_, s)), Ok((_, t))) => {
            println!(
                "  sales recovered: {} redo records; stock recovered: {} redo records",
                s.redo_records, t.redo_records
            );
        }
        (s, t) => {
            if let Err(e) = s {
                println!("  sales recovery FAILED: {e}");
            }
            if let Err(e) = t {
                println!("  stock recovery FAILED: {e}");
            }
        }
    }
    if let Some(inv) = &outcome.invariant {
        println!(
            "  business verdict: cross-db consistent = {} ({} orders found)",
            inv.consistent(),
            inv.orders_found
        );
        for v in inv.violations.iter().take(3) {
            println!(
                "    COLLAPSE: item {} sold {} units but stock only decremented {}",
                v.item, v.sold, v.decremented
            );
        }
    }
    if let Some(orders) = &outcome.orders {
        println!(
            "  business RPO: {}/{} committed orders survived",
            orders.recovered, orders.committed
        );
    }
    println!();
}

fn main() {
    println!("A site disaster strikes a running e-commerce system. What does the");
    println!("backup site hold? (Same workload, same failure instant, two designs.)\n");
    drill(BackupMode::AdcConsistencyGroup, 3);
    // Try a few seeds for the naive mode: collapse depends on where the
    // failure lands relative to each volume's independent session.
    for seed in [3, 4, 5] {
        drill(BackupMode::AdcPerVolume, seed);
    }
    println!("Conclusion: the consistency group turns \"usually corrupted\" into \"always");
    println!("recoverable with bounded, quantified data loss\" — the paper's claim C3.");
}
