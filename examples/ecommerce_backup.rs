//! The paper's demonstration, end to end (§IV): two container platforms,
//! the namespace operator, and the three demo steps — backup configuration
//! by tagging (Figs. 3–4), snapshot development (Fig. 5), and data
//! analytics on the snapshot volumes (Fig. 6) — followed by a disaster
//! drill.
//!
//! ```text
//! cargo run --example ecommerce_backup
//! ```

use tsuru_core::{DemoConfig, DemoSystem};
use tsuru_sim::SimDuration;

fn main() {
    let mut demo = DemoSystem::new(DemoConfig::default());

    // The console screen before anything happens (Fig. 2 layout).
    println!("console before tagging:");
    for line in demo.console_screen() {
        println!("{line}");
    }
    println!();

    // Step 1 (Figs. 3–4): tag the namespace; the operator configures ADC
    // with a consistency group; claims appear at the backup site.
    demo.step1_configure_backup();

    // The business process runs continuously (the left-half transaction
    // window of Fig. 2).
    demo.run_workload_for(SimDuration::from_millis(250));

    // Step 2 (Fig. 5): develop a snapshot group at the backup site.
    let handles = demo.step2_develop_snapshot("pit-1");

    // Step 3 (Fig. 6): analytics on the snapshot volumes, while the
    // business keeps running on the main site.
    let report = demo
        .step3_analytics(&handles, 5)
        .expect("snapshot group image is crash-consistent");
    demo.run_workload_for(SimDuration::from_millis(150));

    // Disaster drill: the backup must be usable.
    let fail_at = demo.sim.now();
    demo.fail_main_site();
    let horizon = fail_at + SimDuration::from_millis(100);
    demo.sim.run_until(&mut demo.world, horizon);
    let failover = demo.failover(fail_at);
    let business = demo.recover_business();

    println!();
    println!("console after the drill:");
    for line in demo.console_screen() {
        println!("{line}");
    }
    println!();
    println!("full transcript:");
    for line in &demo.transcript {
        println!("{line}");
    }

    assert!(failover.consistency.is_consistent());
    assert!(business.fully_consistent());
    assert!(report.order_count > 0);
    println!("\ndemonstration complete: slowdown-free backup, usable analytics, clean failover.");
}
