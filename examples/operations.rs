//! A day in the life of the storage administrator: status tables,
//! planned-maintenance suspend with delta resync, the scheduled snapshot
//! catalogue, and thin-pool capacity pressure.
//!
//! ```text
//! cargo run --example operations
//! ```

use tsuru_core::{DemoConfig, DemoSystem};
use tsuru_sim::SimDuration;
use tsuru_storage::{render_pool_status, render_replication_status};

fn main() {
    let mut demo = DemoSystem::new(DemoConfig::default());
    demo.step1_configure_backup();
    demo.enable_snapshot_schedule(SimDuration::from_millis(100), 3);

    println!("== replication status after configuration ==");
    for line in render_replication_status(&demo.world.st) {
        println!("{line}");
    }

    // Business runs; the catalogue accumulates (and prunes) generations.
    for _ in 0..6 {
        demo.run_workload_for(SimDuration::from_millis(110));
        demo.reconcile_backup();
    }
    println!("\n== snapshot catalogue (retention 3) ==");
    for name in demo.snapshot_catalogue() {
        println!("  {name}");
    }

    // Planned maintenance: suspend the group, let the business keep
    // writing, then delta-resync.
    let group = demo.groups()[0];
    let now = demo.sim.now();
    demo.world.st.suspend_group(group, now);
    println!("\n== group suspended for maintenance ==");
    demo.run_workload_for(SimDuration::from_millis(100));
    for line in render_replication_status(&demo.world.st) {
        println!("{line}");
    }
    let report = demo.world.st.resync_group(group);
    println!(
        "resync: {} block(s) copied, delta = {}",
        report.blocks_copied, report.delta
    );
    assert!(report.delta, "a suspended group gets a delta resync");

    // Replication resumes; let it catch up and verify.
    demo.run_workload_for(SimDuration::from_millis(100));
    demo.world.app_mut().stopped = true;
    demo.sim.run(&mut demo.world);
    let verdict = demo.world.st.verify_consistency(&[group]);
    println!(
        "\n== after resync: write-order faithful = {} ==",
        verdict.is_consistent()
    );
    assert!(verdict.is_consistent());

    println!("\n== pool utilization ==");
    for line in render_pool_status(&demo.world.st) {
        println!("{line}");
    }
    println!(
        "\ncommitted orders end to end: {}",
        demo.world.app().metrics.committed_orders
    );
}
