//! Analytics on snapshot volumes while replication keeps running (§III-A2,
//! §IV-D): the backup data is *usable*, not just stored.
//!
//! Takes a snapshot group of the backup-site volumes mid-run, keeps the
//! business running, and shows that (a) the analytics image is frozen and
//! crash-consistent, and (b) the live secondary volumes keep advancing
//! underneath it (copy-on-write).
//!
//! ```text
//! cargo run --example analytics_on_snapshot
//! ```

use tsuru_core::{BackupMode, RigConfig, TwoSiteRig};
use tsuru_sim::{SimDuration, SimTime};

fn main() {
    let mut rig = TwoSiteRig::new(RigConfig {
        seed: 13,
        mode: BackupMode::AdcConsistencyGroup,
        ..Default::default()
    });
    tsuru_ecom::driver::start_clients(&mut rig.world, &mut rig.sim);

    // Let the business run, then freeze a point-in-time image at the
    // backup site.
    rig.sim.run_until(&mut rig.world, SimTime::from_millis(150));
    let committed_at_snapshot = rig.committed_orders();
    let snaps = rig.snapshot_backup_group("pit-analytics");
    println!(
        "snapshot group taken at t={} ({} orders committed so far)",
        rig.sim.now(),
        committed_at_snapshot
    );

    // Business keeps running for another stretch.
    rig.sim.run_for(&mut rig.world, SimDuration::from_millis(200));
    println!(
        "business kept running: {} orders committed by t={}",
        rig.committed_orders(),
        rig.sim.now()
    );

    // Analytics read the frozen image.
    let report = rig
        .analytics_on_snapshots(&snaps, 5)
        .expect("group snapshot image is crash-consistent");
    println!("\nanalytics on the frozen image:");
    for line in report.render() {
        println!("  {line}");
    }
    assert!(
        report.order_count <= committed_at_snapshot,
        "the snapshot must not see post-snapshot orders"
    );

    // A second, later snapshot sees strictly more history.
    let snaps2 = rig.snapshot_backup_group("pit-analytics-2");
    // (Drain replication so the second image includes the tail.)
    rig.world.app_mut().stopped = true;
    rig.sim.run(&mut rig.world);
    let report2 = rig
        .analytics_on_snapshots(&snaps2, 5)
        .expect("second snapshot is consistent too");
    println!(
        "\nsecond snapshot (taken later): {} orders vs {} in the first image",
        report2.order_count, report.order_count
    );
    assert!(report2.order_count >= report.order_count);

    let cow = rig.world.st.array(rig.backup).cow_saves();
    println!(
        "\ncopy-on-write preservations on the backup array: {cow} \
         (replication advanced under {} live snapshots)",
        snaps.len() + snaps2.len()
    );
}
