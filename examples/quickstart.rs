//! Quickstart: protect a two-database business process with asynchronous
//! data copy in a consistency group, survive a site disaster, recover.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use tsuru_core::{BackupMode, RigConfig, TwoSiteRig};
use tsuru_sim::{SimDuration, SimTime};

fn main() {
    // 1. Build the paper's deployment: two arrays, a metro link, four
    //    volumes (sales WAL/data, stock WAL/data), two databases, eight
    //    closed-loop order clients — protected by ADC in one consistency
    //    group.
    let mut rig = TwoSiteRig::new(RigConfig {
        seed: 7,
        mode: BackupMode::AdcConsistencyGroup,
        ..Default::default()
    });
    println!("deployment up: {} replication group(s)", rig.groups.len());

    // 2. Run the business and break the main site mid-flight.
    let fail_at = SimTime::from_millis(250);
    rig.schedule_main_failure(fail_at);
    tsuru_ecom::driver::start_clients(&mut rig.world, &mut rig.sim);
    rig.sim
        .run_until(&mut rig.world, fail_at + SimDuration::from_millis(200));

    let committed = rig.committed_orders();
    let latency = rig.latency_summary();
    println!("orders committed before the disaster: {committed}");
    println!("transaction latency: {}", latency.display_nanos());

    // 3. Fail over to the backup site.
    let (consistency, rpo) = rig.failover(fail_at);
    println!(
        "failover: write-order-faithful = {}, lost writes = {}, rpo = {}",
        consistency.is_consistent(),
        rpo.lost_writes,
        rpo.rpo
    );

    // 4. Recover the databases from the replicated volumes and verify the
    //    business-level invariant.
    let outcome = rig.recover_from_backup();
    let invariant = outcome.invariant.as_ref().expect("both DBs recover");
    let orders = outcome.orders.as_ref().expect("sales DB recovered");
    println!(
        "recovery: sales ok = {}, stock ok = {}, cross-db consistent = {}",
        outcome.sales.is_ok(),
        outcome.stock.is_ok(),
        invariant.consistent()
    );
    println!(
        "business RPO: {} of {} committed orders survived ({} lost)",
        orders.recovered, orders.committed, orders.lost
    );
    assert!(invariant.consistent(), "a consistency group never collapses");
}
