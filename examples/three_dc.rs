//! Three-data-centre protection: metro SDC + WAN ADC from the same
//! volumes (the combined topology of the paper's related work, §V).
//!
//! The business pays only the metro round trip per commit, the metro site
//! never loses an acknowledged order, and the far site holds a consistent
//! prefix for true disaster distance.
//!
//! ```text
//! cargo run --example three_dc
//! ```

use tsuru_core::{BackupMode, RigConfig, TwoSiteRig};
use tsuru_sim::{SimDuration, SimTime};
use tsuru_simnet::LinkConfig;

fn main() {
    let mut cfg = RigConfig {
        seed: 404,
        mode: BackupMode::ThreeDc,
        ..Default::default()
    };
    // A genuine WAN to the far site; one millisecond to the metro site.
    cfg.link = LinkConfig::with(SimDuration::from_millis(25), 1_000_000_000 / 8);
    let mut rig = TwoSiteRig::new(cfg);
    println!(
        "topology: main ──1ms/SDC──▶ metro   and   main ──25ms/ADC-CG──▶ far ({} groups)",
        rig.groups.len()
    );

    let fail_at = SimTime::from_millis(250);
    rig.schedule_main_failure(fail_at);
    tsuru_ecom::driver::start_clients(&mut rig.world, &mut rig.sim);
    rig.sim
        .run_until(&mut rig.world, fail_at + SimDuration::from_millis(200));

    let committed = rig.committed_orders();
    println!(
        "business before the disaster: {} orders, latency {}",
        committed,
        rig.latency_summary().display_nanos()
    );

    // Fail over the asynchronous far leg; the metro leg is already current.
    let groups = rig.groups.clone();
    for &g in &groups {
        if rig.world.st.fabric.group(g).mode == tsuru_storage::GroupMode::Adc {
            let rep_before = rig.world.st.promote_group(g);
            let _ = rep_before;
        }
    }

    let metro = rig.recover_from_metro();
    let far = rig.recover_from_backup();
    let morders = metro.orders.as_ref().expect("metro sales recovered");
    let forders = far.orders.as_ref().expect("far sales recovered");
    println!(
        "metro copy: {}/{} orders, cross-db consistent = {}",
        morders.recovered,
        morders.committed,
        metro.fully_consistent()
    );
    println!(
        "far copy:   {}/{} orders, cross-db consistent = {}",
        forders.recovered,
        forders.committed,
        far.fully_consistent()
    );
    assert_eq!(morders.lost, 0, "metro SDC loses nothing");
    assert!(metro.fully_consistent() && far.fully_consistent());
    println!(
        "\n3DC: metro-level commit latency, zero metro loss, disaster-distance far\n\
         copy that is always a consistent prefix — both §V alternatives at once."
    );
}
